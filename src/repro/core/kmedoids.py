"""Network k-medoids: the paper's partitioning algorithm (Section 4.2).

A set of k objects (*medoids*) is drawn at random; every object is assigned
to the cluster of the nearest reachable medoid; then single-medoid swaps are
attempted, each committed only when it lowers the evaluation function

    R({(C_i, m_i)}) = sum_i sum_{p in C_i} d(p, m_i),

until ``max_bad_swaps`` consecutive replacements fail (a local optimum).
Multiple random restarts keep the best local optimum, as in PAM/CLARA.

The two network-specific subroutines are implemented exactly as in the
paper:

* :meth:`NetworkKMedoids.medoid_dist_find` — Figure 4's ``Medoid_Dist_Find``:
  a *concurrent* Dijkstra expansion seeded from every medoid's edge
  endpoints, tagging every network node with its nearest medoid and the
  distance to it in one traversal.
* :meth:`NetworkKMedoids.assign_points` — Equation 1: a point p on edge
  (n_x, n_y) is assigned to the nearest of (a) the medoid nearest to n_x via
  n_x, (b) the medoid nearest to n_y via n_y, (c) a medoid lying on p's own
  edge, reached directly.
* :meth:`NetworkKMedoids.inc_medoid_update` — Figure 5's
  ``Inc_Medoid_Update``: after swapping ``old_medoid -> new_medoid`` only
  the nodes previously owned by the removed medoid are re-seeded (from
  their still-assigned frontier neighbours) together with the new medoid's
  edge endpoints, and the expansion may *improve* existing assignments.
  This produces exactly the same node tagging as running
  ``Medoid_Dist_Find`` from scratch (a tested invariant) at a fraction of
  the cost — the paper's Figure 12 speedup experiment.
"""

from __future__ import annotations

import heapq
import math
import random
import time

from repro.core.base import NetworkClusterer
from repro.core.degrade import ComponentPointSet, distribute_k
from repro.core.result import ClusteringResult
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.resilience.deadline import STATE as _RES, check as _res_check
from repro.network.dijkstra import multi_source
from repro.network.points import NetworkPoint, PointSet
from repro.obs.core import STATE as _OBS, add as _obs_add, span as _span

__all__ = ["NetworkKMedoids", "MedoidState"]


class MedoidState:
    """Node tagging for a medoid set: nearest medoid and distance per node.

    ``node_dist[n]`` is the network distance from node ``n`` to its nearest
    medoid and ``node_medoid[n]`` that medoid's point id.  Nodes unreachable
    from every medoid are absent from both maps.
    """

    __slots__ = ("node_dist", "node_medoid")

    def __init__(
        self,
        node_dist: dict[int, float],
        node_medoid: dict[int, int],
    ) -> None:
        self.node_dist = node_dist
        self.node_medoid = node_medoid

    def copy(self) -> "MedoidState":
        return MedoidState(dict(self.node_dist), dict(self.node_medoid))


class NetworkKMedoids(NetworkClusterer):
    """k-medoids clustering of objects on a spatial network.

    Parameters
    ----------
    network:
        Network backend (in-memory or disk-backed).
    points:
        The objects to cluster.
    k:
        Number of clusters, ``1 <= k <= len(points)``.
    max_bad_swaps:
        Consecutive unsuccessful medoid replacements before declaring a
        local optimum (the paper uses 15).
    n_restarts:
        Number of independent random initialisations; the best local
        optimum wins.
    incremental:
        Use ``Inc_Medoid_Update`` for swap evaluation (default) instead of
        recomputing the node tagging from scratch each time.
    seed:
        Seed for the internal random generator (reproducible runs).
    initial_medoids:
        Optional explicit initial medoid point ids (used by the paper's
        "ideal initialisation" experiment, Figure 11b); overrides random
        initialisation for the first restart.
    max_swaps:
        Hard cap on swap attempts per restart (safety valve; the paper's
        termination is via ``max_bad_swaps``).
    budget / check_connectivity:
        See :class:`~repro.core.base.NetworkClusterer`.  k-medoids is the
        one algorithm that cannot natively handle a disconnected network
        (medoids seeded in one component never reach another), so by
        default connectivity is analysed and a disconnected input is
        clustered per component with ``k`` apportioned by object count.
    """

    algorithm_name = "k-medoids"
    handles_disconnected = False

    def __init__(
        self,
        network,
        points: PointSet,
        k: int,
        max_bad_swaps: int = 15,
        n_restarts: int = 1,
        incremental: bool = True,
        seed: int | None = None,
        initial_medoids: list[int] | None = None,
        max_swaps: int = 10_000,
        budget=None,
        check_connectivity: bool | None = None,
        checkpoint=None,
        resume: dict | None = None,
        accelerator=None,
        backend: str | None = None,
    ) -> None:
        super().__init__(
            network, points, budget=budget, check_connectivity=check_connectivity,
            checkpoint=checkpoint, resume=resume, backend=backend,
        )
        if not 1 <= k <= len(points):
            raise ParameterError(
                f"k must be in [1, {len(points)}], got {k!r}"
            )
        if max_bad_swaps < 0:
            raise ParameterError("max_bad_swaps must be non-negative")
        if n_restarts < 1:
            raise ParameterError("n_restarts must be >= 1")
        if initial_medoids is not None:
            if len(set(initial_medoids)) != k:
                raise ParameterError(
                    f"initial_medoids must hold {k} distinct point ids"
                )
            for pid in initial_medoids:
                points.get(pid)  # raises PointNotFoundError when absent
        self.k = int(k)
        self.max_bad_swaps = int(max_bad_swaps)
        self.n_restarts = int(n_restarts)
        self.incremental = bool(incremental)
        self.initial_medoids = list(initial_medoids) if initial_medoids else None
        self.max_swaps = int(max_swaps)
        self._rng = random.Random(seed)
        #: Optional :class:`repro.perf.DistanceAccelerator` whose
        #: :meth:`~repro.perf.DistanceAccelerator.screen_swap` rejects
        #: provably-losing swaps before their (incremental) evaluation.
        #: The screen consumes no randomness and mirrors a rejected
        #: swap's bookkeeping, so results are identical with or without.
        self.accelerator = accelerator
        self._incident_cache: dict[int, list[tuple[int, int]]] | None = None
        #: live references for _checkpoint_state (set by _cluster/_swap_loop)
        self._live: dict = {}

    # ------------------------------------------------------------------
    # Figure 4: Medoid_Dist_Find
    # ------------------------------------------------------------------
    def medoid_dist_find(self, medoids: list[NetworkPoint]) -> MedoidState:
        """Tag every node with its nearest medoid via concurrent expansion.

        All medoids' edge endpoints are enqueued with their direct
        distances, then a single multi-source Dijkstra settles each node
        exactly once at its final (minimal) distance.
        """
        entries: list[tuple[float, int, object]] = []
        for m in medoids:
            weight = self.network.edge_weight(m.u, m.v)
            entries.append((m.offset, m.u, m.point_id))
            entries.append((weight - m.offset, m.v, m.point_id))
        node_dist, node_medoid = multi_source(self.network, entries)
        return MedoidState(node_dist, node_medoid)

    # ------------------------------------------------------------------
    # Figure 5: Inc_Medoid_Update
    # ------------------------------------------------------------------
    def inc_medoid_update(
        self,
        state: MedoidState,
        old_medoid: NetworkPoint,
        new_medoid: NetworkPoint,
        surviving: list[NetworkPoint],
    ) -> MedoidState:
        """Node tagging after swapping ``old_medoid -> new_medoid``.

        The input ``state`` is not modified; a new state is returned.

        ``surviving`` are the medoids kept across the swap.  Their edge
        endpoints are re-enqueued along with the frontier seeds: the paper's
        Figure 5 seeds the reset region only from still-assigned neighbour
        nodes, which misses the corner case where *every* node around a
        surviving medoid was owned by the removed one (then no frontier
        carries that survivor's influence back in); it also cannot recover a
        surviving medoid that owned no node at all.  Re-seeding survivors
        costs O(k) heap entries and the improve-only acceptance rule makes
        redundant seeds no-ops, so correctness is restored at negligible
        cost.

        See :meth:`inc_medoid_update_inplace` for the allocation-free
        variant the swap loop uses.
        """
        new_state = state.copy()
        self.inc_medoid_update_inplace(new_state, old_medoid, new_medoid, surviving)
        return new_state

    def inc_medoid_update_inplace(
        self,
        state: MedoidState,
        old_medoid: NetworkPoint,
        new_medoid: NetworkPoint,
        surviving: list[NetworkPoint],
    ) -> list[tuple[int, float | None, int | None]]:
        """In-place ``Inc_Medoid_Update`` returning an undo log.

        Mutates ``state`` and returns the change log for
        :meth:`rollback_update` — the paper's "the change is rolled-back"
        without copying the O(|V|) node maps, which would otherwise dominate
        the incremental iteration's cost at large k (the whole point of
        Figure 12 is that the *touched region* shrinks as k grows).
        """
        node_dist = state.node_dist
        node_medoid = state.node_medoid
        old_id = old_medoid.point_id
        log: list[tuple[int, float | None, int | None]] = []

        def record(node: int) -> None:
            log.append((node, node_dist.get(node), node_medoid.get(node)))

        # Unassign every node owned by the removed medoid (paper lines 2-4).
        reset_nodes = [n for n, med in node_medoid.items() if med == old_id]
        for n in reset_nodes:
            record(n)
            del node_dist[n]
            del node_medoid[n]

        heap: list[tuple[float, int, int, int]] = []
        counter = 0
        # Seed the reset region from its still-assigned frontier (lines 5-10).
        for n in reset_nodes:
            for nbr, weight in self.network.neighbors(n):
                med = node_medoid.get(nbr)
                if med is not None:
                    heap.append((node_dist[nbr] + weight, counter, n, med))
                    counter += 1
        # Seed the new medoid's edge endpoints (lines 11-16) and re-seed the
        # survivors' endpoints (see inc_medoid_update's docstring).
        for m in [new_medoid, *surviving]:
            weight = self.network.edge_weight(m.u, m.v)
            heap.append((m.offset, counter, m.u, m.point_id))
            counter += 1
            heap.append((weight - m.offset, counter, m.v, m.point_id))
            counter += 1
        heapq.heapify(heap)

        guard = _FAULTS.engaged or _RES.engaged
        budget = _FAULTS.budget if guard else None
        # Modified Concurrent_Expansion: accept a pop when the node is
        # unassigned *or* the new distance improves on the stored one.
        while heap:
            d, _, node, med = heapq.heappop(heap)
            current = node_dist.get(node)
            if current is not None and d >= current:
                continue
            if guard:
                if _FAULTS.engaged:
                    _fault("kmedoids.update_settle")
                if _RES.engaged:
                    _res_check("kmedoids.update_settle", partial=state)
                if budget is not None:
                    budget.spend_expansions(1, partial=state)
            record(node)
            node_dist[node] = d
            node_medoid[node] = med
            for nbr, weight in self.network.neighbors(node):
                nd = d + weight
                nbr_current = node_dist.get(nbr)
                if nbr_current is None or nd < nbr_current:
                    counter += 1
                    heapq.heappush(heap, (nd, counter, nbr, med))
        return log

    @staticmethod
    def rollback_update(
        state: MedoidState,
        log: list[tuple[int, float | None, int | None]],
    ) -> None:
        """Undo an :meth:`inc_medoid_update_inplace` (reverse replay)."""
        node_dist = state.node_dist
        node_medoid = state.node_medoid
        for node, dist, med in reversed(log):
            if dist is None:
                node_dist.pop(node, None)
                node_medoid.pop(node, None)
            else:
                node_dist[node] = dist
                node_medoid[node] = med

    # ------------------------------------------------------------------
    # Equation 1: point assignment
    # ------------------------------------------------------------------
    @staticmethod
    def _medoids_by_edge(
        medoids: list[NetworkPoint],
    ) -> dict[tuple[int, int], list[NetworkPoint]]:
        by_edge: dict[tuple[int, int], list[NetworkPoint]] = {}
        for m in medoids:
            by_edge.setdefault(m.edge, []).append(m)
        return by_edge

    def _assign_edge_points(
        self,
        edge: tuple[int, int],
        same_edge_medoids,
        state: MedoidState,
        assignment: dict[int, int],
        distance: dict[int, float],
    ) -> None:
        """Evaluate Equation 1 for every point of one edge, in place."""
        u, v = edge
        weight = self.network.edge_weight(u, v)
        du = state.node_dist.get(u)
        dv = state.node_dist.get(v)
        node_medoid = state.node_medoid
        budget = _FAULTS.budget if _FAULTS.engaged else None
        for p in self.points.points_on_edge(u, v):
            if budget is not None:
                # One Equation-1 evaluation per point.
                budget.spend_distance_computations(1, partial=assignment)
            best = math.inf
            best_med = NOISE
            if du is not None:
                cand = du + p.offset
                if cand < best:
                    best = cand
                    best_med = node_medoid[u]
            if dv is not None:
                cand = dv + (weight - p.offset)
                if cand < best:
                    best = cand
                    best_med = node_medoid[v]
            for m in same_edge_medoids:
                cand = abs(m.offset - p.offset)
                if cand < best:
                    best = cand
                    best_med = m.point_id
            assignment[p.point_id] = best_med
            distance[p.point_id] = best

    def assign_points(
        self,
        medoids: list[NetworkPoint],
        state: MedoidState,
    ) -> tuple[dict[int, int], dict[int, float]]:
        """Assign every point to its nearest medoid (Equation 1).

        Returns ``(assignment, distance)`` maps keyed by point id; points
        unreachable from every medoid get label ``NOISE`` and distance inf
        (impossible on a connected network).
        """
        medoids_by_edge = self._medoids_by_edge(medoids)
        assignment: dict[int, int] = {}
        distance: dict[int, float] = {}
        for edge in self.points.populated_edges():
            self._assign_edge_points(
                edge, medoids_by_edge.get(edge, ()), state, assignment, distance
            )
        return assignment, distance

    def assign_points_incremental(
        self,
        medoids: list[NetworkPoint],
        state: MedoidState,
        changed_nodes,
        extra_edges,
        assignment: dict[int, int],
        distance: dict[int, float],
        incident_edges: dict[int, list[tuple[int, int]]],
    ) -> list[tuple[int, int, float]]:
        """Re-evaluate Equation 1 only where the swap could change it.

        A point's assignment depends on its endpoints' node tags and on the
        medoids lying on its own edge, so only edges incident to
        ``changed_nodes`` (the undo log of the in-place update) plus
        ``extra_edges`` (the old and new medoids' edges, whose same-edge
        medoid sets changed) need rework.  ``assignment``/``distance`` are
        updated in place; the returned undo log restores them via
        :meth:`rollback_assignment`.  Values are computed by the same code
        path as :meth:`assign_points`, so the maintained maps stay
        bit-identical to a full rescan (a tested invariant).
        """
        affected: set[tuple[int, int]] = set(extra_edges)
        for node in changed_nodes:
            affected.update(incident_edges.get(node, ()))
        medoids_by_edge = self._medoids_by_edge(medoids)
        log: list[tuple[int, int, float]] = []
        for edge in affected:
            for p in self.points.points_on_edge(*edge):
                log.append((p.point_id, assignment[p.point_id],
                            distance[p.point_id]))
            self._assign_edge_points(
                edge, medoids_by_edge.get(edge, ()), state, assignment, distance
            )
        return log

    @staticmethod
    def rollback_assignment(
        assignment: dict[int, int],
        distance: dict[int, float],
        log: list[tuple[int, int, float]],
    ) -> None:
        """Undo an :meth:`assign_points_incremental` (reverse replay)."""
        for pid, med, dist in reversed(log):
            assignment[pid] = med
            distance[pid] = dist

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _cluster(self) -> ClusteringResult:
        resume = self._take_resume_state()
        all_ids = sorted(self.points.point_ids())
        best_R = math.inf
        best_assignment: dict[int, int] | None = None
        best_medoids: list[int] = []
        stats = {
            "restarts": self.n_restarts,
            "iterations": 0,
            "committed_swaps": 0,
            "screened_swaps": 0,
            "first_iteration_time_s": 0.0,
            "incremental_iteration_time_s": 0.0,
            "incremental_iterations": 0,
        }
        start_restart = 0
        if resume is not None:
            stats.update(resume["stats"])
            best_R = resume["best_R"]
            if resume["best_assignment"] is not None:
                best_assignment = {
                    int(k): v for k, v in resume["best_assignment"].items()
                }
            best_medoids = list(resume["best_medoids"])
            start_restart = resume["restart"]
            version, internal, gauss = resume["rng"]
            self._rng.setstate((version, tuple(internal), gauss))

        for restart in range(start_restart, self.n_restarts):
            self._live.update(
                restart=restart, best_R=best_R, best_assignment=best_assignment,
                best_medoids=best_medoids, stats=stats,
            )
            if resume is not None:
                # Re-enter the interrupted restart mid-swap-loop; the seed
                # and expand phases were already paid for before the crash.
                result = self._local_optimum(None, stats, resume=resume)
                resume = None
            else:
                if restart == 0 and self.initial_medoids is not None:
                    medoid_ids = list(self.initial_medoids)
                else:
                    medoid_ids = self._rng.sample(all_ids, self.k)
                result = self._local_optimum(medoid_ids, stats)
            R, assignment, medoid_ids = result
            if R < best_R:
                best_R = R
                best_assignment = assignment
                best_medoids = medoid_ids

        assert best_assignment is not None
        stats["R"] = best_R
        return ClusteringResult(
            best_assignment,
            algorithm=self.algorithm_name,
            params={
                "k": self.k,
                "max_bad_swaps": self.max_bad_swaps,
                "n_restarts": self.n_restarts,
                "incremental": self.incremental,
            },
            stats=dict(stats, medoids=best_medoids),
        )

    def _cluster_components(self, report) -> ClusteringResult:
        """Cluster a disconnected network one component at a time.

        ``k`` is apportioned over the populated components in proportion to
        their object counts (see :func:`~repro.core.degrade.distribute_k`).
        Cluster labels are medoid point ids — globally unique — so the
        per-component assignments merge without relabelling.  When
        ``k`` is smaller than the number of populated components, the
        smallest components receive no medoid and their objects are
        reported as ``NOISE`` (counted in ``stats["unclustered_points"]``).
        """
        populated = [
            (comp, count)
            for comp, count in zip(report.components, report.point_counts)
            if count > 0
        ]
        quotas = distribute_k(self.k, [count for _, count in populated])
        assignment: dict[int, int] = {}
        medoids: list[int] = []
        total_R = 0.0
        screened = 0
        unclustered = 0
        per_component: list[dict] = []
        for (comp, count), quota in zip(populated, quotas):
            view = ComponentPointSet(self.points, comp)
            if quota == 0:
                for p in view:
                    assignment[p.point_id] = NOISE
                unclustered += count
                per_component.append({"points": count, "k": 0})
                continue
            sub = NetworkKMedoids(
                self.network,
                view,
                quota,
                max_bad_swaps=self.max_bad_swaps,
                n_restarts=self.n_restarts,
                incremental=self.incremental,
                seed=self._rng.randrange(2**32),
                max_swaps=self.max_swaps,
                check_connectivity=False,
                accelerator=self.accelerator,
            )
            # _cluster (not run): the surrounding run() already owns the
            # span, timing, and budget activation.
            sub_result = sub._cluster()
            assignment.update(sub_result.assignment)
            medoids.extend(sub_result.stats["medoids"])
            total_R += sub_result.stats["R"]
            screened += sub_result.stats.get("screened_swaps", 0)
            per_component.append(
                {"points": count, "k": quota, "R": sub_result.stats["R"]}
            )
        return ClusteringResult(
            assignment,
            algorithm=self.algorithm_name,
            params={
                "k": self.k,
                "max_bad_swaps": self.max_bad_swaps,
                "n_restarts": self.n_restarts,
                "incremental": self.incremental,
            },
            stats={
                "R": total_R,
                "medoids": sorted(medoids),
                "screened_swaps": screened,
                "per_component": per_component,
                "unclustered_points": unclustered,
            },
        )

    def _checkpoint_state(self) -> dict:
        """Swap-loop cursor snapshot (taken at iteration boundaries only).

        Captures everything `_cluster` needs to re-enter the interrupted
        restart: the best-so-far across restarts, the live medoid set and
        node/assignment maps, the bad/swap counters, and the RNG state —
        so the resumed run replays the remaining iterations exactly.
        """
        lv = self._live
        version, internal, gauss = self._rng.getstate()
        return {
            "restart": lv["restart"],
            "best_R": lv["best_R"],
            "best_assignment": lv["best_assignment"],
            "best_medoids": list(lv["best_medoids"]),
            "stats": dict(lv["stats"]),
            "medoid_set": sorted(lv["medoid_set"]),
            "node_dist": dict(lv["state"].node_dist),
            "node_medoid": dict(lv["state"].node_medoid),
            "assignment": dict(lv["assignment"]),
            "distance": dict(lv["distance"]),
            "R": lv["R"],
            "bad": lv["bad"],
            "swaps": lv["swaps"],
            "rng": [version, list(internal), gauss],
        }

    def _incident_populated_edges(self) -> dict[int, list[tuple[int, int]]]:
        """node -> populated edges touching it (built once per instance)."""
        if self._incident_cache is None:
            incident: dict[int, list[tuple[int, int]]] = {}
            for edge in self.points.populated_edges():
                incident.setdefault(edge[0], []).append(edge)
                incident.setdefault(edge[1], []).append(edge)
            self._incident_cache = incident
        return self._incident_cache

    def _local_optimum(
        self,
        medoid_ids: list[int] | None,
        stats: dict,
        resume: dict | None = None,
    ) -> tuple[float, dict[int, int], list[int]]:
        """Iterate medoid swaps from an initial medoid set to a local optimum.

        With ``resume``, the seed/expand phases are skipped and the swap
        loop restarts from the snapshotted cursor (medoid set, node maps,
        assignment, R, bad/swap counters) — the replay is deterministic
        because the RNG state was restored alongside.
        """
        if resume is None:
            assert medoid_ids is not None
            medoids = [self.points.get(pid) for pid in medoid_ids]
            medoid_set = set(medoid_ids)

            t0 = time.perf_counter()
            # The paper's three phases, traced separately: *seed* (Figure
            # 4's concurrent expansion from the initial medoids), *expand*
            # (Equation 1's point assignment), *swap* (the replacement loop).
            with _span("kmedoids.seed"):
                state = self.medoid_dist_find(medoids)
            with _span("kmedoids.expand"):
                assignment, distance = self.assign_points(medoids, state)
            stats["first_iteration_time_s"] += time.perf_counter() - t0
            stats["iterations"] += 1
            R = sum(distance.values())
            bad = swaps = 0
        else:
            medoid_set = set(resume["medoid_set"])
            state = MedoidState(
                {int(k): v for k, v in resume["node_dist"].items()},
                {int(k): v for k, v in resume["node_medoid"].items()},
            )
            assignment = {int(k): v for k, v in resume["assignment"].items()}
            distance = {int(k): v for k, v in resume["distance"].items()}
            R = resume["R"]
            bad = resume["bad"]
            swaps = resume["swaps"]
        incident = self._incident_populated_edges() if self.incremental else None

        all_ids = sorted(self.points.point_ids())
        with _span("kmedoids.swap"):
            medoid_set, R, assignment = self._swap_loop(
                medoid_set, state, assignment, distance, R, all_ids, incident,
                stats, bad=bad, swaps=swaps,
            )
        if _OBS.enabled:
            _obs_add("kmedoids.restarts")
        return R, dict(assignment), sorted(medoid_set)

    def _swap_loop(
        self,
        medoid_set: set[int],
        state: MedoidState,
        assignment: dict[int, int],
        distance: dict[int, float],
        R: float,
        all_ids: list[int],
        incident,
        stats: dict,
        bad: int = 0,
        swaps: int = 0,
    ) -> tuple[set[int], float, dict[int, int]]:
        """The medoid replacement loop (the paper's swap phase).

        Returns the final medoid set, evaluation value and assignment (the
        non-incremental path rebinds the maps rather than mutating them, so
        the caller must take the returned ones).  ``bad``/``swaps`` start
        non-zero when resuming from a checkpoint; each completed iteration
        is a checkpoint tick.
        """
        while bad < self.max_bad_swaps and swaps < self.max_swaps:
            swaps += 1
            old_id = self._rng.choice(sorted(medoid_set))
            new_id = self._rng.choice(all_ids)
            if new_id in medoid_set:
                bad += 1
                continue
            old_medoid = self.points.get(old_id)
            new_medoid = self.points.get(new_id)
            cand_set = (medoid_set - {old_id}) | {new_id}
            cand_medoids = [self.points.get(pid) for pid in sorted(cand_set)]

            if self.accelerator is not None and self.accelerator.screen_swap(
                self.points, assignment, distance, old_id, new_medoid,
                cand_medoids, R,
            ):
                # The bounds prove cand_R >= R: same outcome as a rejected
                # evaluation, at bound-arithmetic cost and without touching
                # the tagging.  Placed after the RNG draws so the random
                # trajectory matches the unscreened run exactly.
                stats["screened_swaps"] += 1
                stats["iterations"] += 1
                bad += 1
                if _OBS.enabled:
                    _obs_add("perf.kmedoids.screened_swaps")
                if self.checkpoint is not None:
                    self._live.update(
                        medoid_set=medoid_set, state=state,
                        assignment=assignment, distance=distance, R=R,
                        bad=bad, swaps=swaps,
                    )
                    self._ckpt_tick()
                continue

            t1 = time.perf_counter()
            if self.incremental:
                # Both the node tagging (Figure 5) and the Equation-1 point
                # scan are updated in place, touching only the changed
                # region; a rejected swap replays the undo logs ("the change
                # is rolled-back").
                survivors = [
                    self.points.get(pid) for pid in sorted(medoid_set - {old_id})
                ]
                state_log = self.inc_medoid_update_inplace(
                    state, old_medoid, new_medoid, survivors
                )
                changed_nodes = {node for node, _, _ in state_log}
                assign_log = self.assign_points_incremental(
                    cand_medoids,
                    state,
                    changed_nodes,
                    (old_medoid.edge, new_medoid.edge),
                    assignment,
                    distance,
                    incident,
                )
                cand_R = sum(distance.values())
                committed = cand_R < R
                if committed:
                    medoid_set = cand_set
                    R = cand_R
                else:
                    self.rollback_assignment(assignment, distance, assign_log)
                    self.rollback_update(state, state_log)
                if _OBS.enabled:
                    _obs_add("kmedoids.update_touched_nodes", len(state_log))
                    _obs_add("kmedoids.update_reassigned_points", len(assign_log))
            else:
                cand_state = self.medoid_dist_find(cand_medoids)
                cand_assignment, cand_distance = self.assign_points(
                    cand_medoids, cand_state
                )
                cand_R = sum(cand_distance.values())
                committed = cand_R < R
                if committed:
                    medoid_set = cand_set
                    state = cand_state
                    assignment = cand_assignment
                    distance = cand_distance
                    R = cand_R
            stats["incremental_iteration_time_s"] += time.perf_counter() - t1
            stats["incremental_iterations"] += 1
            stats["iterations"] += 1
            if committed:
                bad = 0
                stats["committed_swaps"] += 1
                if _OBS.enabled:
                    _obs_add("kmedoids.committed_swaps")
            else:
                bad += 1
            if self.checkpoint is not None:
                # The non-incremental path rebinds the maps on commit, so
                # the live references are refreshed every iteration.
                self._live.update(
                    medoid_set=medoid_set, state=state, assignment=assignment,
                    distance=distance, R=R, bad=bad, swaps=swaps,
                )
                self._ckpt_tick()
        if _OBS.enabled:
            _obs_add("kmedoids.swap_iterations", swaps)
        return medoid_set, R, assignment
