"""Clustering result container shared by all algorithms."""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.eval.metrics import NOISE

__all__ = ["ClusteringResult"]


class ClusteringResult:
    """A flat clustering of network points.

    Attributes
    ----------
    assignment:
        Mapping ``point_id -> cluster label``.  Labels are arbitrary ints;
        :data:`~repro.eval.metrics.NOISE` (= -1) marks outliers.
    algorithm:
        Name of the producing algorithm (e.g. ``"eps-link"``).
    params:
        The parameters the algorithm ran with, for reporting.
    stats:
        Free-form runtime statistics (timings, operation counts, iteration
        counts) recorded by the algorithm.
    """

    def __init__(
        self,
        assignment: Mapping[int, int],
        algorithm: str,
        params: Mapping[str, object] | None = None,
        stats: Mapping[str, object] | None = None,
    ) -> None:
        self.assignment: dict[int, int] = dict(assignment)
        self.algorithm = algorithm
        self.params: dict[str, object] = dict(params or {})
        self.stats: dict[str, object] = dict(stats or {})
        self._clusters: dict[int, list[int]] | None = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def clusters(self) -> dict[int, list[int]]:
        """Mapping ``label -> sorted list of point ids`` (noise excluded)."""
        if self._clusters is None:
            out: dict[int, list[int]] = {}
            for pid, label in self.assignment.items():
                if label != NOISE:
                    out.setdefault(label, []).append(pid)
            for members in out.values():
                members.sort()
            self._clusters = out
        return self._clusters

    @property
    def num_clusters(self) -> int:
        """Number of clusters (noise not counted)."""
        return len(self.clusters())

    @property
    def num_points(self) -> int:
        return len(self.assignment)

    def cluster_of(self, point_id: int) -> int:
        """The label assigned to a point (may be NOISE)."""
        return self.assignment[point_id]

    def members(self, label: int) -> list[int]:
        """Sorted point ids of one cluster."""
        return list(self.clusters().get(label, []))

    def outliers(self) -> list[int]:
        """Sorted ids of points labelled as noise."""
        return sorted(pid for pid, lab in self.assignment.items() if lab == NOISE)

    def sizes(self) -> dict[int, int]:
        """Cluster label -> member count."""
        return {label: len(members) for label, members in self.clusters().items()}

    def is_noise(self, point_id: int) -> bool:
        return self.assignment[point_id] == NOISE

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------
    def as_partition(self) -> set[frozenset[int]]:
        """Label-free view: the set of clusters as frozensets of point ids.

        Two results describe the same clustering iff their partitions are
        equal (labels are arbitrary).
        """
        return {frozenset(members) for members in self.clusters().values()}

    def same_clustering(self, other: "ClusteringResult") -> bool:
        """True when both results induce the same partition and the same
        noise set."""
        return (
            self.as_partition() == other.as_partition()
            and self.outliers() == other.outliers()
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.assignment.items())

    def __len__(self) -> int:
        return len(self.assignment)

    def __repr__(self) -> str:
        n_noise = len(self.outliers())
        return (
            f"ClusteringResult(algorithm={self.algorithm!r}, points="
            f"{self.num_points}, clusters={self.num_clusters}, noise={n_noise})"
        )
