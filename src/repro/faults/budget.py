"""Operation budgets: bounded-work execution with clean aborts.

An :class:`OpBudget` caps the amount of work a traversal or clustering run
may perform — heap settles (*expansions*), *distance computations*
(edge relaxations / Equation-1 evaluations), and physical *page reads*.
When a cap is hit the charging site raises
:class:`~repro.exceptions.BudgetExceededError` carrying the partial state
computed so far, so a caller serving heavy traffic can shed an oversized
request with a well-defined error instead of an unbounded stall.

Budgets ride the same ``STATE.engaged`` guard as fault injection (see
:mod:`repro.faults.core`): while no budget is active and no fault rules are
installed, instrumented hot loops run their original, unguarded paths.

Usage::

    from repro.faults import OpBudget

    budget = OpBudget(max_expansions=10_000)
    try:
        result = EpsLink(net, pts, eps=0.5, budget=budget).run()
    except BudgetExceededError as exc:
        log.warning("shed %s after %d %s", exc.algorithm, exc.spent, exc.op)
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.exceptions import BudgetExceededError
from repro.faults.core import STATE
from repro.obs.core import add as _obs_add

__all__ = ["OpBudget", "active_budget"]


class OpBudget:
    """A mutable budget over traversal/storage operations.

    Parameters
    ----------
    max_expansions:
        Cap on settled vertices across all traversals charged to this
        budget (Dijkstra settles, query-frontier settles, cluster-expansion
        steps).  ``None`` = unlimited.
    max_distance_computations:
        Cap on elementary distance evaluations (edge relaxations,
        Equation-1 point evaluations, point-pair distances).
    max_page_reads:
        Cap on physical page reads by the storage layer.

    A budget is reusable only after :meth:`reset`; spent counters are
    cumulative across the operations charged to it, which is what lets one
    budget cover a whole multi-phase clustering run.
    """

    __slots__ = (
        "max_expansions",
        "max_distance_computations",
        "max_page_reads",
        "expansions",
        "distance_computations",
        "page_reads",
    )

    def __init__(
        self,
        max_expansions: int | None = None,
        max_distance_computations: int | None = None,
        max_page_reads: int | None = None,
    ) -> None:
        for name, value in (
            ("max_expansions", max_expansions),
            ("max_distance_computations", max_distance_computations),
            ("max_page_reads", max_page_reads),
        ):
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        self.max_expansions = max_expansions
        self.max_distance_computations = max_distance_computations
        self.max_page_reads = max_page_reads
        self.expansions = 0
        self.distance_computations = 0
        self.page_reads = 0

    # ------------------------------------------------------------------
    # Charging (called from guarded hot paths)
    # ------------------------------------------------------------------
    def _exceeded(self, op: str, limit: int, spent: int, partial) -> None:
        _obs_add("budget.aborts")
        _obs_add(f"budget.aborts.{op}")
        raise BudgetExceededError(op, limit, spent, partial=partial)

    def spend_expansions(self, n: int = 1, partial=None) -> None:
        self.expansions += n
        limit = self.max_expansions
        if limit is not None and self.expansions > limit:
            self._exceeded("expansions", limit, self.expansions, partial)

    def spend_distance_computations(self, n: int = 1, partial=None) -> None:
        self.distance_computations += n
        limit = self.max_distance_computations
        if limit is not None and self.distance_computations > limit:
            self._exceeded(
                "distance_computations", limit, self.distance_computations, partial
            )

    def spend_page_reads(self, n: int = 1, partial=None) -> None:
        self.page_reads += n
        limit = self.max_page_reads
        if limit is not None and self.page_reads > limit:
            self._exceeded("page_reads", limit, self.page_reads, partial)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def spent(self) -> dict[str, int]:
        return {
            "expansions": self.expansions,
            "distance_computations": self.distance_computations,
            "page_reads": self.page_reads,
        }

    def remaining(self) -> dict[str, int | None]:
        """Per-op remaining allowance (``None`` = unlimited)."""
        return {
            "expansions": None if self.max_expansions is None
            else max(0, self.max_expansions - self.expansions),
            "distance_computations": None if self.max_distance_computations is None
            else max(0, self.max_distance_computations - self.distance_computations),
            "page_reads": None if self.max_page_reads is None
            else max(0, self.max_page_reads - self.page_reads),
        }

    def reset(self) -> None:
        self.expansions = 0
        self.distance_computations = 0
        self.page_reads = 0

    @contextmanager
    def activate(self) -> Iterator["OpBudget"]:
        """Make this the process-active budget for the ``with`` body.

        Guarded sites charge the active budget; nesting restores the outer
        budget on exit (the inner one fully replaces it meanwhile).
        """
        previous = STATE.budget
        STATE.budget = self
        STATE.refresh()
        try:
            yield self
        finally:
            STATE.budget = previous
            STATE.refresh()

    def __repr__(self) -> str:
        caps = ", ".join(
            f"{name}={cap}"
            for name, cap in (
                ("expansions", self.max_expansions),
                ("distance_computations", self.max_distance_computations),
                ("page_reads", self.max_page_reads),
            )
            if cap is not None
        )
        return f"OpBudget({caps or 'unlimited'})"


def active_budget() -> OpBudget | None:
    """The currently active budget, if any."""
    return STATE.budget
