"""Deterministic, seedable fault injection for the repro library.

The storage and traversal layers carry *injection sites* — named points
(``"pager.write_page"``, ``"bptree.store"``, ``"dijkstra.settle"``, ...)
where this module may be asked to misbehave on purpose.  A test installs
:class:`FaultRule` objects describing *what* to inject (an I/O error, a
simulated crash, a torn write) and *when* (on the N-th hit of a site, or
with a seeded per-hit probability), runs the code under test, and asserts
that the system either survives or fails with a typed error — never with
silent corruption.

Design constraints, mirroring :mod:`repro.obs`:

* **Zero overhead while disarmed.**  Every site is guarded by a single
  attribute check (``STATE.engaged``); with no rules installed and no
  operation budget active, instrumented code executes its original path.
* **Deterministic.**  Probability triggers draw from one ``random.Random``
  seeded explicitly (or from ``REPRO_FAULT_SEED``, default 0), so a failing
  fault run reproduces exactly from its logged seed.
* **Observable.**  Every injected fault bumps the
  ``faults.injected.<site>`` counter in :mod:`repro.obs`, so fault behaviour
  shows up in the same report as the costs it perturbs.

Sites call two primitives:

* :func:`fire` — raise the configured fault (``InjectedIOError`` for kind
  ``"error"``, :class:`CrashPoint` for ``"crash"``) when a rule triggers,
  or stall for ``delay_s`` seconds (kind ``"delay"``) and carry on — the
  lever that lets chaos tests exercise deadlines and breaker timeouts.
  Delays sleep through ``STATE.sleep``, which tests point at a
  :class:`~repro.resilience.VirtualClock` so injected latency costs no
  wall-clock time.
* :func:`tear` — for write sites only: return the number of bytes of a
  payload to persist before "crashing" (kind ``"torn"``), or ``None``.

Usage::

    from repro import faults

    with faults.plan(faults.FaultRule("pager.write_page", "crash", after=3)):
        with pytest.raises(faults.CrashPoint):
            NetworkStore.build(path, net, pts)
    # reopen must now either succeed or raise a typed StorageError
"""

from __future__ import annotations

import fnmatch
import os
import random
import time
from collections.abc import Iterator
from contextlib import contextmanager

from repro.obs.core import add as _obs_add

__all__ = [
    "CrashPoint",
    "InjectedIOError",
    "WorkerKilled",
    "FaultRule",
    "FaultState",
    "STATE",
    "default_seed",
    "install",
    "inject",
    "clear",
    "reseed",
    "plan",
    "fire",
    "tear",
    "hits",
    "injected_counts",
]

ENV_SEED = "REPRO_FAULT_SEED"


class CrashPoint(Exception):
    """A simulated process crash at an injection site.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: library code
    that catches ``ReproError`` for cleanup must not swallow a simulated
    crash, exactly as it could not catch a real ``kill -9``.  Recovery code
    paths (e.g. the temp-file cleanup in ``NetworkStore.build``) treat it as
    "the process died here" and leave on-disk state as-is.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"simulated crash at injection site {site!r}")
        self.site = site


class InjectedIOError(OSError):
    """A simulated I/O failure at an injection site.

    ``transient`` marks the failure as one that would succeed on retry (a
    blip, not persistent damage).  The retry layer
    (:mod:`repro.recovery.retry`) retries transient injected errors and
    re-raises persistent ones immediately; the default ``False`` preserves
    the pre-retry semantics where every injected error surfaces.
    """

    def __init__(self, site: str, transient: bool = False) -> None:
        flavour = "transient " if transient else ""
        super().__init__(f"injected {flavour}I/O error at site {site!r}")
        self.site = site
        self.transient = transient


class WorkerKilled(BaseException):
    """A *simulated* worker-process death at an injection site.

    The in-process stand-in for ``kill -9``: when a ``"kill"`` rule fires
    and :attr:`FaultState.kill_real` is off, this is raised instead of
    actually signalling the process.  It deliberately subclasses
    ``BaseException`` — no library ``except Exception`` handler (request
    isolation, cleanup paths) may swallow it, exactly as none of them
    could survive a real SIGKILL.  Only a worker *harness* that models a
    whole process (the supervised pool's simulated workers, test fakes)
    catches it and reports the death upward.

    With ``kill_real`` set — worker subprocesses of the supervised pool
    arm it on startup — the rule instead sends ``SIGKILL`` to the current
    process and nothing is ever raised.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"simulated worker kill at injection site {site!r}")
        self.site = site


def default_seed() -> int:
    """The fault seed from ``REPRO_FAULT_SEED`` (0 when unset/garbage)."""
    try:
        return int(os.environ.get(ENV_SEED, "0"))
    except ValueError:
        return 0


class FaultRule:
    """One injection rule: *where*, *what*, and *when*.

    Parameters
    ----------
    site:
        Site name to match; ``fnmatch`` patterns are allowed
        (``"pager.*"`` matches every pager site).
    kind:
        ``"error"`` (raise :class:`InjectedIOError`), ``"crash"`` (raise
        :class:`CrashPoint`), ``"torn"`` (write sites persist a partial
        payload, then crash), ``"delay"`` (stall ``delay_s`` seconds via
        the plan's sleep function, then continue normally), or ``"kill"``
        (die as a whole process: SIGKILL the current process when
        ``STATE.kill_real`` is armed — worker subprocesses arm it — else
        raise the simulated :class:`WorkerKilled`).
    after:
        Trigger on the N-th matching hit (1-based) counted from rule
        installation.  Mutually exclusive with ``probability``.
    probability:
        Trigger each hit with this probability, drawn from the plan's
        seeded RNG.
    times:
        Maximum number of firings (default 1; ``None`` = unlimited).
    tear_fraction:
        For ``"torn"`` rules: fraction of the payload persisted before the
        simulated crash (default 0.5).
    transient:
        For ``"error"`` rules: mark the injected :class:`InjectedIOError`
        as transient (retryable by :mod:`repro.recovery.retry`).  Default
        ``False`` preserves the original always-surfaces semantics.
    delay_s:
        For ``"delay"`` rules: seconds of latency to inject per firing.
    """

    __slots__ = ("site", "kind", "after", "probability", "times", "tear_fraction",
                 "transient", "delay_s", "hits", "fired")

    KINDS = ("error", "crash", "torn", "delay", "kill")

    def __init__(
        self,
        site: str,
        kind: str = "crash",
        after: int | None = None,
        probability: float | None = None,
        times: int | None = 1,
        tear_fraction: float = 0.5,
        transient: bool = False,
        delay_s: float = 0.0,
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"kind must be one of {self.KINDS}, got {kind!r}")
        if (after is None) == (probability is None):
            raise ValueError("give exactly one of after / probability")
        if after is not None and after < 1:
            raise ValueError(f"after must be >= 1, got {after!r}")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability!r}")
        if not 0.0 <= tear_fraction < 1.0:
            raise ValueError(f"tear_fraction must be in [0, 1), got {tear_fraction!r}")
        if transient and kind != "error":
            raise ValueError("transient only applies to kind='error' rules")
        if kind == "delay" and delay_s <= 0:
            raise ValueError(f"delay rules need delay_s > 0, got {delay_s!r}")
        if kind != "delay" and delay_s:
            raise ValueError("delay_s only applies to kind='delay' rules")
        self.site = site
        self.kind = kind
        self.after = after
        self.probability = probability
        self.times = times
        self.tear_fraction = float(tear_fraction)
        self.transient = bool(transient)
        self.delay_s = float(delay_s)
        self.hits = 0  # matching hits seen by this rule
        self.fired = 0  # times this rule actually injected

    def reset(self) -> None:
        """Zero the mutable hit/fire counters so the rule can be reused."""
        self.hits = 0
        self.fired = 0

    def to_dict(self) -> dict:
        """JSON-ready form of the rule's immutable configuration.

        The supervised pool ships fault plans to worker subprocesses as
        JSON; hit/fire counters are *not* carried — every fresh worker
        process starts counting its own hits from zero, which is what
        makes per-worker kill schedules deterministic across restarts.
        """
        return {
            "site": self.site,
            "kind": self.kind,
            "after": self.after,
            "probability": self.probability,
            "times": self.times,
            "tear_fraction": self.tear_fraction,
            "transient": self.transient,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output (validates again)."""
        return cls(
            doc["site"],
            doc.get("kind", "crash"),
            after=doc.get("after"),
            probability=doc.get("probability"),
            times=doc.get("times", 1),
            tear_fraction=doc.get("tear_fraction", 0.5),
            transient=doc.get("transient", False),
            delay_s=doc.get("delay_s", 0.0),
        )

    def matches(self, site: str) -> bool:
        return site == self.site or fnmatch.fnmatchcase(site, self.site)

    def should_fire(self, rng: random.Random) -> bool:
        """Account one matching hit; True when the fault must inject now."""
        if self.times is not None and self.fired >= self.times:
            return False
        self.hits += 1
        if self.after is not None:
            return self.hits == self.after
        return rng.random() < self.probability

    def __repr__(self) -> str:
        trigger = (
            f"after={self.after}" if self.after is not None
            else f"p={self.probability}"
        )
        return f"FaultRule({self.site!r}, {self.kind!r}, {trigger})"


class FaultState:
    """Process-global fault-injection state (use the module-level ``STATE``).

    ``engaged`` is the single flag hot paths check: true when any rule is
    installed *or* an :class:`~repro.faults.OpBudget` is active, so a site
    pays one attribute lookup in the common (disarmed, unbudgeted) case.
    """

    __slots__ = ("enabled", "rules", "rng", "seed", "site_hits", "budget",
                 "engaged", "sleep", "kill_real")

    def __init__(self) -> None:
        self.enabled = False
        self.rules: list[FaultRule] = []
        self.seed = default_seed()
        self.rng = random.Random(self.seed)
        #: site -> hits observed while enabled (for sweep sizing in tests)
        self.site_hits: dict[str, int] = {}
        #: the active OpBudget, set by :meth:`repro.faults.OpBudget.activate`
        self.budget = None
        self.engaged = False
        #: how ``"delay"`` rules sleep; tests install a virtual clock's
        #: ``sleep`` so injected latency is deterministic and instant
        self.sleep = time.sleep
        #: armed by worker subprocesses: ``"kill"`` rules then SIGKILL the
        #: real process instead of raising the simulated WorkerKilled
        self.kill_real = False

    def refresh(self) -> None:
        self.enabled = bool(self.rules)
        self.engaged = self.enabled or self.budget is not None


STATE = FaultState()


# ----------------------------------------------------------------------
# Plan management
# ----------------------------------------------------------------------
def reseed(seed: int | None = None) -> int:
    """Reset the trigger RNG (``None`` = re-read ``REPRO_FAULT_SEED``)."""
    STATE.seed = default_seed() if seed is None else int(seed)
    STATE.rng = random.Random(STATE.seed)
    return STATE.seed


def install(*rules: FaultRule) -> None:
    """Add rules to the active plan and arm the injection sites."""
    STATE.rules.extend(rules)
    STATE.refresh()


def inject(
    site: str,
    kind: str = "crash",
    after: int | None = None,
    probability: float | None = None,
    times: int | None = 1,
    tear_fraction: float = 0.5,
    transient: bool = False,
    delay_s: float = 0.0,
) -> FaultRule:
    """Build and :func:`install` a single rule; returns it for inspection."""
    rule = FaultRule(site, kind, after=after, probability=probability,
                     times=times, tear_fraction=tear_fraction,
                     transient=transient, delay_s=delay_s)
    install(rule)
    return rule


def clear() -> None:
    """Remove every rule and zero the per-site hit counters."""
    STATE.rules.clear()
    STATE.site_hits.clear()
    STATE.refresh()


@contextmanager
def plan(
    *rules: FaultRule,
    seed: int | None = None,
    sleep=None,
) -> Iterator[FaultState]:
    """Scoped fault plan: install ``rules``, yield, then restore.

    Nesting is supported; the previous rule list and RNG are restored on
    exit — including when the body raises mid-sweep — so plans compose
    with surrounding plans and with active budgets.  Rules handed to a
    plan have their mutable hit/fire counters reset on entry, so one
    :class:`FaultRule` object can be reused across sweep iterations
    without a stale ``fired`` count silently disarming it.

    ``sleep`` overrides how ``"delay"`` rules stall for the plan's scope
    (pass a :class:`~repro.resilience.VirtualClock`'s ``sleep`` for
    instant, deterministic latency).
    """
    saved_rules = list(STATE.rules)
    saved_rng = STATE.rng
    saved_seed = STATE.seed
    saved_hits = dict(STATE.site_hits)
    saved_sleep = STATE.sleep
    if seed is not None:
        reseed(seed)
    else:
        reseed(STATE.seed)
    for rule in rules:
        rule.reset()
    STATE.rules = list(rules)
    STATE.site_hits = {}
    if sleep is not None:
        STATE.sleep = sleep
    STATE.refresh()
    try:
        yield STATE
    finally:
        STATE.rules = saved_rules
        STATE.rng = saved_rng
        STATE.seed = saved_seed
        STATE.site_hits = saved_hits
        STATE.sleep = saved_sleep
        STATE.refresh()


# ----------------------------------------------------------------------
# Site primitives
# ----------------------------------------------------------------------
def _record_injection(site: str, rule: FaultRule) -> None:
    rule.fired += 1
    _obs_add(f"faults.injected.{site}")
    _obs_add("faults.injected_total")


def fire(site: str) -> None:
    """Account a hit of ``site``; raise or stall if a rule triggers.

    Error/crash rules raise; delay rules sleep ``delay_s`` seconds via
    ``STATE.sleep`` and fall through to the remaining rules, so a plan can
    combine latency with errors at one site.  Kill rules end the whole
    process: SIGKILL for real with ``STATE.kill_real`` armed (worker
    subprocesses), the uncatchable-by-library-code :class:`WorkerKilled`
    otherwise.  Torn rules are ignored here (they only make sense where a
    payload is being persisted; see :func:`tear`).
    """
    st = STATE
    if not st.enabled:
        return
    st.site_hits[site] = st.site_hits.get(site, 0) + 1
    for rule in st.rules:
        if rule.kind == "torn" or not rule.matches(site):
            continue
        if rule.should_fire(st.rng):
            _record_injection(site, rule)
            if rule.kind == "delay":
                st.sleep(rule.delay_s)
                continue
            if rule.kind == "error":
                raise InjectedIOError(site, transient=rule.transient)
            if rule.kind == "kill":
                if st.kill_real:
                    import signal

                    os.kill(os.getpid(), signal.SIGKILL)
                    # Unreachable: SIGKILL cannot be handled or delayed —
                    # but keep the simulated raise as a backstop on
                    # platforms where the signal could not be delivered.
                raise WorkerKilled(site)
            raise CrashPoint(site)


def tear(site: str, nbytes: int) -> int | None:
    """Bytes of an ``nbytes`` payload to persist before a torn-write crash.

    Returns ``None`` when no torn rule triggers.  When one does, the caller
    must write exactly the returned prefix, flush it, and raise
    :class:`CrashPoint` — simulating a sector-level partial write followed
    by power loss.
    """
    st = STATE
    if not st.enabled:
        return None
    for rule in st.rules:
        if rule.kind != "torn" or not rule.matches(site):
            continue
        if rule.should_fire(st.rng):
            _record_injection(site, rule)
            return max(0, min(nbytes - 1, int(nbytes * rule.tear_fraction)))
    return None


def hits(site: str) -> int:
    """Hits recorded for ``site`` since the plan was installed/cleared."""
    return STATE.site_hits.get(site, 0)


def injected_counts() -> dict[str, int]:
    """site-pattern -> firings, for every installed rule that fired."""
    out: dict[str, int] = {}
    for rule in STATE.rules:
        if rule.fired:
            out[rule.site] = out.get(rule.site, 0) + rule.fired
    return out
