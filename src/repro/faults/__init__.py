"""repro.faults — deterministic fault injection and operation budgets.

Robustness tooling for the storage and traversal layers:

* **Fault injection** (:mod:`repro.faults.core`) — named injection sites in
  the pager, B+-tree, network store, and traversal hot paths can be armed
  with seeded rules that raise I/O errors, simulate crashes
  (:class:`CrashPoint`), or tear writes mid-page.  The crash-recovery test
  suite sweeps these sites to prove the storage layer never reopens silent
  garbage.
* **Operation budgets** (:mod:`repro.faults.budget`) — :class:`OpBudget`
  caps expansions / distance computations / page reads and aborts cleanly
  with :class:`~repro.exceptions.BudgetExceededError` carrying partial
  state, the graceful-degradation contract for oversized requests.

Both are off by default and share a single ``engaged`` guard flag, so the
un-faulted, un-budgeted hot paths run their original code.
"""

from repro.faults.budget import OpBudget, active_budget
from repro.faults.core import (
    CrashPoint,
    FaultRule,
    FaultState,
    InjectedIOError,
    STATE,
    WorkerKilled,
    clear,
    default_seed,
    fire,
    hits,
    inject,
    injected_counts,
    install,
    plan,
    reseed,
    tear,
)

__all__ = [
    "CrashPoint",
    "FaultRule",
    "FaultState",
    "InjectedIOError",
    "OpBudget",
    "STATE",
    "WorkerKilled",
    "active_budget",
    "clear",
    "default_seed",
    "fire",
    "hits",
    "inject",
    "injected_counts",
    "install",
    "plan",
    "reseed",
    "tear",
]
