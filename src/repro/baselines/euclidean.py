"""Euclidean-distance clustering baseline.

"Past algorithms are based on the Euclidean distance and cannot be applied
for this setting" — this module implements exactly those past algorithms
(k-medoids / DBSCAN / single-link over straight-line distances between the
objects' interpolated planar positions) so the effectiveness experiments can
show *why* network distance matters: on a network whose weights deviate from
straight-line geometry (rivers, one-way detours, terrain), Euclidean
clustering groups objects that are far apart on the network.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.matrix import DistanceMatrix
from repro.network.points import PointSet

__all__ = ["euclidean_distance_matrix"]


def euclidean_distance_matrix(network, points: PointSet) -> DistanceMatrix:
    """Pairwise straight-line distances between the points' planar positions.

    Requires node coordinates on the network (point positions are linearly
    interpolated along their edges).  The result plugs into every algorithm
    of :mod:`repro.baselines.classic`, giving the Euclidean versions of
    k-medoids, DBSCAN, and single-link.
    """
    ids = sorted(points.point_ids())
    xy = np.empty((len(ids), 2))
    for i, pid in enumerate(ids):
        xy[i] = points.get(pid).coords(network)
    delta = xy[:, None, :] - xy[None, :, :]
    values = np.sqrt((delta ** 2).sum(axis=2))
    return DistanceMatrix(ids, values)
