"""Precomputed distance-matrix baseline (the paper's Section 3.2 strawman).

"One possible method ... is to precompute the distance between every pair of
network nodes and store it in a 2D matrix ... Nevertheless the time
complexity of this method is high for large graphs.  In addition, this
matrix could be prohibitively large to store."

This module implements that straightforward approach for completeness and
comparison: an O(N^2) matrix of exact pairwise *point* distances computed by
one augmented-graph Dijkstra per point.  It serves three purposes:

1. the baseline cost measurements of the ablation benchmark (how expensive
   the precomputation is compared with the traversal algorithms);
2. reference *oracles* for the property tests — the classic matrix-based
   algorithms in :mod:`repro.baselines.classic` consume it;
3. a practical option for small datasets, where it is perfectly usable.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.exceptions import ParameterError, PointNotFoundError
from repro.network.augmented import AugmentedView, POINT, point_vertex
from repro.network.points import PointSet

__all__ = ["DistanceMatrix", "node_distance_matrix"]


class DistanceMatrix:
    """Symmetric matrix of exact pairwise network distances between points.

    Attributes
    ----------
    ids:
        Sorted point ids; row/column ``i`` corresponds to ``ids[i]``.
    values:
        ``(N, N)`` float array; ``inf`` marks unreachable pairs, the
        diagonal is 0.
    """

    def __init__(self, ids: list[int], values: np.ndarray) -> None:
        if values.shape != (len(ids), len(ids)):
            raise ParameterError(
                f"matrix shape {values.shape} does not match {len(ids)} ids"
            )
        self.ids = list(ids)
        self.values = values
        self._index = {pid: i for i, pid in enumerate(self.ids)}

    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, network, points: PointSet) -> "DistanceMatrix":
        """Compute the full matrix with one Dijkstra expansion per point.

        Complexity O(N (|V| + N) log(|V| + N)) time and O(N^2) space — the
        costs the paper's Section 3.2 warns about.
        """
        aug = AugmentedView(network, points)
        ids = sorted(points.point_ids())
        index = {pid: i for i, pid in enumerate(ids)}
        n = len(ids)
        values = np.full((n, n), math.inf)
        np.fill_diagonal(values, 0.0)
        for i, pid in enumerate(ids):
            dist: dict = {}
            heap: list[tuple[float, tuple[int, int]]] = [(0.0, point_vertex(pid))]
            while heap:
                d, vertex = heapq.heappop(heap)
                if vertex in dist:
                    continue
                dist[vertex] = d
                kind, ident = vertex
                if kind == POINT:
                    values[i, index[ident]] = d
                for nbr, seg in aug.neighbors(vertex):
                    if nbr not in dist:
                        heapq.heappush(heap, (d + seg, nbr))
        # Symmetrise exactly (floating-point expansions agree, but be safe).
        values = np.minimum(values, values.T)
        return cls(ids, values)

    # ------------------------------------------------------------------
    def index_of(self, point_id: int) -> int:
        try:
            return self._index[point_id]
        except KeyError:
            raise PointNotFoundError(point_id) from None

    def distance(self, a: int, b: int) -> float:
        """Network distance between points ``a`` and ``b`` (by id)."""
        return float(self.values[self.index_of(a), self.index_of(b)])

    def __len__(self) -> int:
        return len(self.ids)

    def nbytes(self) -> int:
        """Memory footprint of the stored matrix in bytes."""
        return int(self.values.nbytes)

    def __repr__(self) -> str:
        return f"DistanceMatrix(points={len(self.ids)}, bytes={self.nbytes()})"


def node_distance_matrix(network) -> tuple[list[int], np.ndarray]:
    """All-pairs *node* distance matrix — the exact structure whose
    O(|V|^2) size the paper's Section 3.2 rules out for large networks.

    Returns sorted node ids and the matrix (inf for unreachable pairs).
    """
    from repro.network.dijkstra import single_source

    ids = sorted(network.nodes())
    index = {nid: i for i, nid in enumerate(ids)}
    n = len(ids)
    values = np.full((n, n), math.inf)
    for i, nid in enumerate(ids):
        for other, d in single_source(network, nid).items():
            values[i, index[other]] = d
    return ids, values
