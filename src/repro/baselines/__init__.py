"""Baseline methods: the Section 3.2 precomputation strawman, classic
matrix-based clustering algorithms, and the Euclidean-distance baseline."""

from repro.baselines.classic import (
    assign_to_medoids,
    matrix_dbscan,
    matrix_kmedoids,
    matrix_single_link,
    threshold_components,
)
from repro.baselines.euclidean import euclidean_distance_matrix
from repro.baselines.matrix import DistanceMatrix, node_distance_matrix

__all__ = [
    "assign_to_medoids",
    "matrix_dbscan",
    "matrix_kmedoids",
    "matrix_single_link",
    "threshold_components",
    "euclidean_distance_matrix",
    "DistanceMatrix",
    "node_distance_matrix",
]
