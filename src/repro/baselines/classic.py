"""Classic clustering algorithms running on a precomputed distance matrix.

These are the "straightforward application of existing clustering methods"
the paper compares against (Section 3.2): once an O(N^2) distance matrix is
paid for, textbook PAM-style k-medoids, DBSCAN, and agglomerative
single-link run unmodified.  They double as independently implemented
*oracles* for the property tests of the traversal-based algorithms in
:mod:`repro.core`.
"""

from __future__ import annotations

import math
import random
from collections import deque

import numpy as np

from repro.baselines.matrix import DistanceMatrix
from repro.core.dendrogram import Dendrogram, Merge
from repro.core.result import ClusteringResult
from repro.core.unionfind import UnionFind
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError

__all__ = [
    "threshold_components",
    "matrix_dbscan",
    "matrix_single_link",
    "matrix_agglomerative",
    "matrix_kmedoids",
    "assign_to_medoids",
]


def threshold_components(dm: DistanceMatrix, eps: float) -> ClusteringResult:
    """Connected components of the ≤eps thresholded distance graph.

    This is the *definition* of the clusters ε-Link discovers; used as the
    brute-force oracle for :class:`repro.core.EpsLink`.
    """
    if eps <= 0:
        raise ParameterError(f"eps must be positive, got {eps!r}")
    uf = UnionFind(dm.ids)
    n = len(dm.ids)
    for i in range(n):
        for j in range(i + 1, n):
            if dm.values[i, j] <= eps:
                uf.union(dm.ids[i], dm.ids[j])
    label_of_root: dict = {}
    assignment: dict[int, int] = {}
    for pid in dm.ids:
        root = uf.find(pid)
        assignment[pid] = label_of_root.setdefault(root, len(label_of_root))
    return ClusteringResult(
        assignment,
        algorithm="threshold-components",
        params={"eps": eps},
    )


def matrix_dbscan(
    dm: DistanceMatrix, eps: float, min_pts: int = 2
) -> ClusteringResult:
    """Textbook DBSCAN on precomputed distances.

    Identical control flow to :class:`repro.core.NetworkDBSCAN` (including
    the first-come assignment of shared border points) with neighbourhoods
    read straight from the matrix.
    """
    if eps <= 0:
        raise ParameterError(f"eps must be positive, got {eps!r}")
    if min_pts < 1:
        raise ParameterError(f"min_pts must be >= 1, got {min_pts!r}")
    unvisited = -2
    n = len(dm.ids)
    values = dm.values
    state = [unvisited] * n

    def neighborhood(i: int) -> list[int]:
        return [j for j in range(n) if values[i, j] <= eps]

    next_label = 0
    for i in range(n):
        if state[i] != unvisited:
            continue
        nbh = neighborhood(i)
        if len(nbh) < min_pts:
            state[i] = NOISE
            continue
        label = next_label
        next_label += 1
        state[i] = label
        queue = deque(nbh)
        while queue:
            j = queue.popleft()
            if state[j] == NOISE:
                state[j] = label
                continue
            if state[j] != unvisited:
                continue
            state[j] = label
            j_nbh = neighborhood(j)
            if len(j_nbh) >= min_pts:
                queue.extend(j_nbh)
    assignment = {pid: state[i] for i, pid in enumerate(dm.ids)}
    return ClusteringResult(
        assignment,
        algorithm="matrix-dbscan",
        params={"eps": eps, "min_pts": min_pts},
    )


def matrix_single_link(dm: DistanceMatrix) -> Dendrogram:
    """Agglomerative single-link over the full distance matrix (Kruskal).

    O(N^2 log N); the oracle for :class:`repro.core.SingleLink`.
    Unreachable pairs (infinite distance) are never merged, yielding a
    forest on disconnected data.
    """
    n = len(dm.ids)
    values = dm.values
    edges = [
        (float(values[i, j]), i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if math.isfinite(values[i, j])
    ]
    edges.sort()
    uf = UnionFind(range(n))
    cluster_of_root = {i: i for i in range(n)}
    merges: list[Merge] = []
    next_id = n
    for weight, i, j in edges:
        ri, rj = uf.find(i), uf.find(j)
        if ri == rj:
            continue
        left = cluster_of_root.pop(ri)
        right = cluster_of_root.pop(rj)
        uf.union(i, j)
        cluster_of_root[uf.find(i)] = next_id
        merges.append(
            Merge(
                distance=weight,
                left=left,
                right=right,
                merged=next_id,
                size=uf.set_size(i),
            )
        )
        next_id += 1
    return Dendrogram([[pid] for pid in dm.ids], merges)


def matrix_agglomerative(dm: DistanceMatrix, linkage: str = "complete") -> Dendrogram:
    """Agglomerative clustering with single / complete / average linkage.

    The paper's future work considers "hierarchical algorithms that
    consider distances between multiple points from the merged clusters";
    complete-link (maximum inter-cluster distance) and average-link
    (UPGMA) are the canonical such definitions.  Implemented with
    Lance-Williams updates over the precomputed matrix, O(N^3) worst case —
    the brute-force cost the paper quotes for these methods, usable for
    moderate N and as a reference.

    Unreachable (infinite-distance) pairs are never merged (forest output).
    """
    updates = {
        "single": lambda di, dj, ni, nj: min(di, dj),
        "complete": lambda di, dj, ni, nj: max(di, dj),
        "average": lambda di, dj, ni, nj: (ni * di + nj * dj) / (ni + nj),
    }
    if linkage not in updates:
        raise ParameterError(
            f"linkage must be one of {sorted(updates)}, got {linkage!r}"
        )
    update = updates[linkage]

    n = len(dm.ids)
    dist = dm.values.astype(float).copy()
    np.fill_diagonal(dist, math.inf)
    active: dict[int, int] = {i: i for i in range(n)}  # row -> cluster id
    sizes = {i: 1 for i in range(n)}
    merges: list[Merge] = []
    next_id = n
    alive = list(range(n))
    while len(alive) > 1:
        best = math.inf
        best_pair: tuple[int, int] | None = None
        for ai in range(len(alive)):
            i = alive[ai]
            row = dist[i]
            for aj in range(ai + 1, len(alive)):
                j = alive[aj]
                if row[j] < best:
                    best = row[j]
                    best_pair = (i, j)
        if best_pair is None or math.isinf(best):
            break  # disconnected remainder
        i, j = best_pair
        # Lance-Williams update into row/column i.
        for k in alive:
            if k in (i, j):
                continue
            merged = update(dist[i, k], dist[j, k], sizes[i], sizes[j])
            dist[i, k] = dist[k, i] = merged
        merges.append(
            Merge(
                distance=best,
                left=active[i],
                right=active[j],
                merged=next_id,
                size=sizes[i] + sizes[j],
            )
        )
        sizes[i] += sizes[j]
        active[i] = next_id
        next_id += 1
        alive.remove(j)
        dist[j, :] = math.inf
        dist[:, j] = math.inf
    return Dendrogram([[pid] for pid in dm.ids], merges)


def assign_to_medoids(
    dm: DistanceMatrix, medoid_ids: list[int]
) -> tuple[dict[int, int], dict[int, float]]:
    """Nearest-medoid assignment by brute force over the matrix.

    The oracle for Equation 1 + ``Medoid_Dist_Find``: for a fixed medoid
    set, the traversal-based assignment must agree with this argmin.
    Unreachable points get ``NOISE`` / inf.
    """
    if not medoid_ids:
        raise ParameterError("medoid_ids must not be empty")
    cols = [dm.index_of(m) for m in medoid_ids]
    sub = dm.values[:, cols]
    assignment: dict[int, int] = {}
    distance: dict[int, float] = {}
    for i, pid in enumerate(dm.ids):
        row = sub[i]
        j = int(np.argmin(row))
        d = float(row[j])
        if math.isinf(d):
            assignment[pid] = NOISE
            distance[pid] = math.inf
        else:
            assignment[pid] = medoid_ids[j]
            distance[pid] = d
    return assignment, distance


def matrix_kmedoids(
    dm: DistanceMatrix,
    k: int,
    max_bad_swaps: int = 15,
    seed: int | None = None,
    max_swaps: int = 10_000,
) -> ClusteringResult:
    """PAM-style randomized-swap k-medoids on precomputed distances.

    Uses the same swap protocol as the paper's network k-medoids (commit a
    random single-medoid replacement only when the evaluation function R
    improves; stop after ``max_bad_swaps`` consecutive failures), so cost
    comparisons against :class:`repro.core.NetworkKMedoids` isolate the
    distance-computation strategy.
    """
    if not 1 <= k <= len(dm.ids):
        raise ParameterError(f"k must be in [1, {len(dm.ids)}], got {k!r}")
    rng = random.Random(seed)
    ids = list(dm.ids)
    medoids = sorted(rng.sample(ids, k))
    assignment, distances = assign_to_medoids(dm, medoids)
    total = sum(d for d in distances.values() if math.isfinite(d))

    bad = 0
    swaps = 0
    committed = 0
    medoid_set = set(medoids)
    while bad < max_bad_swaps and swaps < max_swaps:
        swaps += 1
        old = rng.choice(sorted(medoid_set))
        new = rng.choice(ids)
        if new in medoid_set:
            bad += 1
            continue
        cand = sorted((medoid_set - {old}) | {new})
        cand_assignment, cand_distances = assign_to_medoids(dm, cand)
        cand_total = sum(d for d in cand_distances.values() if math.isfinite(d))
        if cand_total < total:
            medoid_set = set(cand)
            assignment = cand_assignment
            total = cand_total
            bad = 0
            committed += 1
        else:
            bad += 1
    return ClusteringResult(
        assignment,
        algorithm="matrix-kmedoids",
        params={"k": k, "max_bad_swaps": max_bad_swaps},
        stats={"R": total, "swap_attempts": swaps, "committed_swaps": committed,
               "medoids": sorted(medoid_set)},
    )
