"""Retry-with-backoff for transient I/O on the storage read paths.

Real disks and network filesystems produce *transient* read failures —
an ``EINTR``, a momentary NFS blip — that succeed on retry, alongside
*persistent* failures (bit rot caught by a CRC, a missing file) that
never will.  This module wraps the single physical-read chokepoint
(``PagedFile.read_page``, through which every flat-file, B+-tree, and
network-store read flows) in a retry policy with capped exponential
backoff and deterministic jitter.

What is retried:

* plain :class:`OSError` — the real-world transient class;
* :class:`~repro.faults.InjectedIOError` with ``transient=True`` — the
  fault harness's deterministic stand-in for a blip.

What is **not** retried:

* :class:`~repro.faults.InjectedIOError` with ``transient=False`` —
  the harness says this failure is persistent; it surfaces immediately,
  preserving the pre-retry semantics for every existing fault test;
* :class:`~repro.exceptions.StorageError` and subclasses (including
  ``PageCorruptError``) — corruption does not heal on retry;
* :class:`~repro.faults.CrashPoint` — a simulated process death.

Zero overhead while disarmed: with no policy active, the chokepoint pays
one attribute check (``STATE.policy is None``).  Activate a policy with
the :func:`retrying` context manager or pass ``--retries`` to
``repro cluster``.  Every retry bumps ``retry.attempts`` (and
``retry.attempts.<site>``) in :mod:`repro.obs`; a call that ultimately
succeeds after retrying bumps ``retry.recovered``; one that exhausts its
attempt cap bumps ``retry.giveups`` — all visible in ``--stats`` output.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Callable, TypeVar

from repro.faults.core import InjectedIOError
from repro.obs.core import add as _obs_add

__all__ = [
    "RetryPolicy",
    "RetryState",
    "STATE",
    "retrying",
    "call_with_retry",
]

T = TypeVar("T")


def is_retryable(exc: BaseException) -> bool:
    """Whether the retry layer may re-attempt after ``exc``."""
    if isinstance(exc, InjectedIOError):
        return bool(getattr(exc, "transient", False))
    return isinstance(exc, OSError)


class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts per call (first try included).  Default 3.
    base_delay:
        Delay before the first retry, in seconds; doubles per retry.
    max_delay:
        Ceiling on any single delay.
    jitter:
        Fraction of the computed delay added as seeded pseudo-random
        jitter (0 disables).  The jitter RNG is seeded per policy, so a
        run's sleep schedule is reproducible.
    site_caps:
        Optional per-site attempt caps overriding ``max_attempts``
        (e.g. ``{"pager.read_page": 5}``).
    sleep:
        Injectable sleep function (tests pass a no-op).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        max_delay: float = 1.0,
        jitter: float = 0.5,
        seed: int = 0,
        site_caps: dict[str, int] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts!r}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter!r}")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.site_caps = dict(site_caps or {})
        self._sleep = sleep if sleep is not None else time.sleep
        self._rng = random.Random(seed)

    def attempts_for(self, site: str) -> int:
        return self.site_caps.get(site, self.max_attempts)

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        base = min(self.max_delay, self.base_delay * (2 ** (retry_index - 1)))
        if self.jitter:
            base += base * self.jitter * self._rng.random()
        return min(self.max_delay, base)

    def run(self, site: str, fn: Callable[[], T]) -> T:
        """Call ``fn`` with retries; counters keyed by ``site``."""
        cap = self.attempts_for(site)
        failures = 0
        while True:
            try:
                result = fn()
            except Exception as exc:
                if not is_retryable(exc):
                    raise
                failures += 1
                if failures >= cap:
                    _obs_add("retry.giveups")
                    _obs_add(f"retry.giveups.{site}")
                    raise
                _obs_add("retry.attempts")
                _obs_add(f"retry.attempts.{site}")
                self._sleep(self.delay(failures))
            else:
                if failures:
                    _obs_add("retry.recovered")
                    _obs_add(f"retry.recovered.{site}")
                return result


class RetryState:
    """Process-global retry state; ``policy is None`` means disarmed."""

    __slots__ = ("policy",)

    def __init__(self) -> None:
        self.policy: RetryPolicy | None = None


STATE = RetryState()


@contextmanager
def retrying(policy: RetryPolicy) -> Iterator[RetryPolicy]:
    """Scoped activation: install ``policy``, yield, restore the previous."""
    saved = STATE.policy
    STATE.policy = policy
    try:
        yield policy
    finally:
        STATE.policy = saved


def call_with_retry(site: str, fn: Callable[[], T]) -> T:
    """Run ``fn`` under the active policy, or directly when disarmed."""
    policy = STATE.policy
    if policy is None:
        return fn()
    return policy.run(site, fn)
