"""Salvage pass for damaged network stores (``repro repair``).

``verify_store`` tells an operator *that* a store is damaged; this module
is what they run next.  It never trusts the normal read stack — the pager
refuses uncommitted files and raises on the first bad CRC — and instead
raw-scans the file with its own handle:

1. **Lenient header parse.**  The paged-file header is decoded field by
   field; a flipped magic byte or a failed header CRC downgrades to a
   warning as long as the remaining fields are plausible and consistent
   with the file size.  When the header is beyond trust, the page size
   can be supplied (``--page-size``) or is inferred by trying candidate
   strides and keeping the one under which the most page CRCs validate.
2. **Quarantine.**  Every physical frame's CRC32 trailer is checked;
   failing pages are quarantined (their ids become ``lost_pages``) and
   their bytes are never interpreted.
3. **Structural page identification.**  Surviving pages are parsed as
   B+-tree leaves (``is_leaf`` byte, plausible entry count, strictly
   ascending keys) and as slotted record pages (validated slot
   directory and record bounds).  Overflow stubs are resolved by
   following their chain pages.
4. **Record classification.**  The two record kinds are shape-
   distinguishable: an adjacency record is ``4 + 24·n`` bytes, a point
   group ``20 + 24·m`` bytes, and ``4 + 24n = 20 + 24m`` has no
   solution — so a record's length mod 24 identifies it unambiguously.
   Semantic checks (count field matches the length, weights positive
   and finite, group offsets non-decreasing, the tree key equal to the
   group's first point id) reject garbage that happens to have a valid
   CRC.
5. **Assembly.**  Adjacency records do not contain their own node id —
   that mapping lives only in node-tree leaves — but every edge
   ``(u, v, w)`` is stored in *both* endpoints' records, so losing one
   node's identity usually loses nothing: the edge survives via the
   other endpoint and the node id itself reappears as a neighbour
   reference.  Point groups are fully self-describing, so groups whose
   tree leaf died are salvaged as *orphan records* straight from the
   slotted pages.  Conflicting duplicates (same edge, different weight)
   are dropped and counted rather than guessed at.
6. **Accounting + rebuild.**  Salvaged counts are compared against the
   header metadata (when readable) for an exact ``lost_nodes`` /
   ``lost_edges`` / ``lost_points`` account, and the salvaged
   subnetwork is rebuilt into a fresh, fully indexed, ``verify_store``-
   clean store with ``NetworkStore.build``.

The pass never raises on damaged input: any corruption short of an
unreadable file yields a :class:`RepairReport` with ``recoverable`` and
loss accounting; :func:`repair_store` only raises for operator errors
(missing source file, unwritable destination).
"""

from __future__ import annotations

import math
import os
import struct
import zlib
from dataclasses import dataclass, field

from repro.network.graph import SpatialNetwork, normalize_edge
from repro.network.points import PointSet
from repro.obs.core import add as _obs_add

__all__ = ["RepairReport", "salvage_store", "repair_store"]

# The on-disk formats repair understands, duplicated deliberately from
# the writer modules: repair must parse raw bytes even when the reader
# stack refuses the file, and must keep working against exactly this
# format version.
_FORMAT_VERSION = 2
_CHECKSUM_BYTES = 4
_MAGIC = b"RPRO"
_HEADER_FMT = struct.Struct("<4sHHIQ")  # magic, version, flags, page_size, num_pages
_META_CAPACITY = 256
_MIN_PAGE_SIZE = _HEADER_FMT.size + 2 + _META_CAPACITY
_META = struct.Struct("<QQQQQQQ")  # roots, fill pages, then the three counts

_NODE_HEADER = struct.Struct("<BHQ")  # is_leaf, count, next_leaf/child0
_TREE_ENTRY = struct.Struct("<qq")  # key, value

_PAGE_HEADER = struct.Struct("<HH")  # n_slots, free_end
_SLOT = struct.Struct("<HH")  # offset, length (high bit: overflow stub)
_OVERFLOW_STUB = struct.Struct("<IQ")  # total_len, first_pid
_OVERFLOW_FLAG = 0x8000
_CHAIN_HEADER = struct.Struct("<Q")  # next page id (0 = end)

_ADJ_HEADER = struct.Struct("<I")
_ADJ_ENTRY = struct.Struct("<qdq")  # neighbour, weight, first point id
_GROUP_HEADER = struct.Struct("<qqI")  # u, v, count
_GROUP_ENTRY = struct.Struct("<qdq")  # point id, offset, label
_NO_LABEL = -2  # netstore's "no label" sentinel (NOISE - 1, NOISE == -1)

_PAGE_SIZE_CANDIDATES = (4096, 512, 1024, 2048, 8192, 16384, 32768)


@dataclass
class RepairReport:
    """Outcome of a salvage pass; :meth:`summary` is its JSON shape."""

    source: str
    recoverable: bool = True
    output: str | None = None
    page_size: int | None = None
    total_pages: int | None = None
    quarantined_pages: list[int] = field(default_factory=list)
    expected: dict[str, int] | None = None  # nodes/edges/points from metadata
    salvaged: dict[str, int] = field(default_factory=dict)
    conflicts: int = 0  # contradicting survivors dropped, never guessed at
    notes: list[str] = field(default_factory=list)

    @property
    def lost_pages(self) -> int:
        return len(self.quarantined_pages)

    @property
    def lost(self) -> dict[str, int] | None:
        """Exact per-kind losses, when the metadata counts were readable."""
        if self.expected is None or not self.salvaged:
            return None
        return {
            kind: max(0, self.expected[kind] - self.salvaged.get(kind, 0))
            for kind in ("nodes", "edges", "points")
        }

    @property
    def full_recovery(self) -> bool:
        """Every object accounted for and nothing quarantined or dropped."""
        lost = self.lost
        return (
            self.recoverable
            and self.conflicts == 0
            and lost is not None
            and all(v == 0 for v in lost.values())
        )

    def summary(self) -> dict:
        return {
            "source": self.source,
            "output": self.output,
            "recoverable": self.recoverable,
            "full_recovery": self.full_recovery,
            "page_size": self.page_size,
            "total_pages": self.total_pages,
            "quarantined_pages": list(self.quarantined_pages),
            "lost_pages": self.lost_pages,
            "expected": self.expected,
            "salvaged": dict(self.salvaged),
            "lost": self.lost,
            "conflicts": self.conflicts,
            "notes": list(self.notes),
        }


# ----------------------------------------------------------------------
# Raw parsing helpers
# ----------------------------------------------------------------------
def _crc_ok(payload: bytes, trailer: bytes) -> bool:
    return struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF) == trailer


def _split_frames(raw: bytes, page_size: int) -> tuple[dict[int, bytes], list[int]]:
    """CRC-check every frame: (good pid -> payload, quarantined pids)."""
    stride = page_size + _CHECKSUM_BYTES
    good: dict[int, bytes] = {}
    bad: list[int] = []
    num_pages = len(raw) // stride
    for pid in range(num_pages):
        frame = raw[pid * stride : (pid + 1) * stride]
        if len(frame) == stride and _crc_ok(frame[:page_size], frame[page_size:]):
            good[pid] = frame[:page_size]
        else:
            bad.append(pid)
    return good, bad


def _plausible_page_size(page_size: int) -> bool:
    return _MIN_PAGE_SIZE <= page_size <= (1 << 24)


def _infer_page_size(raw: bytes, report: RepairReport) -> int | None:
    """Pick the candidate stride under which the most page CRCs validate."""
    best_size, best_good = None, 0
    for size in _PAGE_SIZE_CANDIDATES:
        stride = size + _CHECKSUM_BYTES
        # No modulo check: a truncated file rarely ends on a frame
        # boundary, and the CRC score alone picks the right stride.
        if len(raw) < stride:
            continue
        good, _ = _split_frames(raw, size)
        if len(good) > best_good:
            best_size, best_good = size, len(good)
    if best_size is not None:
        report.notes.append(
            f"header unusable; inferred page size {best_size} "
            f"({best_good} CRC-valid pages)"
        )
    return best_size


def _parse_header(raw: bytes, report: RepairReport, page_size_hint: int | None) -> int | None:
    """Best-effort header decode; returns the page size or None."""
    if len(raw) < _HEADER_FMT.size:
        report.notes.append("file shorter than a paged-file header")
        return page_size_hint if page_size_hint else None
    magic, version, _flags, page_size, num_pages = _HEADER_FMT.unpack_from(raw, 0)
    issues = []
    if magic != _MAGIC:
        issues.append(f"bad magic {magic!r}")
    if version != _FORMAT_VERSION:
        issues.append(f"unsupported format version {version}")
    stride = page_size + _CHECKSUM_BYTES
    consistent = (
        _plausible_page_size(page_size)
        and num_pages >= 1
        and num_pages * stride == len(raw)
    )
    truncated = (
        not consistent
        and _plausible_page_size(page_size)
        and num_pages >= 1
        and num_pages * stride > len(raw) >= stride
    )
    if not consistent and not truncated:
        issues.append(
            f"header fields inconsistent with file size "
            f"(page_size={page_size}, num_pages={num_pages}, bytes={len(raw)})"
        )
    header_frame_ok = (
        _plausible_page_size(page_size)
        and len(raw) >= stride
        and _crc_ok(raw[:page_size], raw[page_size:stride])
    )
    if not header_frame_ok:
        issues.append("header page checksum mismatch")
    for issue in issues:
        report.notes.append(f"header: {issue}")
    if consistent and version == _FORMAT_VERSION:
        # Fields hang together even if the magic or CRC is damaged; the
        # strong size consistency check is what we actually trust.
        _read_meta(raw, page_size, header_frame_ok, report)
        return page_size
    if truncated and header_frame_ok and version == _FORMAT_VERSION:
        # The file is shorter than the header declares but the header page
        # checksum validates: trust its page size and salvage the surviving
        # prefix.  The missing tail pages are quarantined by the salvager
        # (``total_pages`` carries the declared count down to it).
        report.notes.append(
            f"file truncated: header declares {num_pages} pages, "
            f"{len(raw) // stride} full frames survive"
        )
        report.total_pages = num_pages
        _read_meta(raw, page_size, header_frame_ok, report)
        return page_size
    if page_size_hint and _plausible_page_size(page_size_hint):
        report.notes.append(f"using supplied page size {page_size_hint}")
        return page_size_hint
    return _infer_page_size(raw, report)


def _read_meta(raw: bytes, page_size: int, frame_ok: bool, report: RepairReport) -> None:
    """Expected object counts from the header metadata area, if readable."""
    try:
        (meta_len,) = struct.unpack_from("<H", raw, _HEADER_FMT.size)
    except struct.error:
        return
    if meta_len != _META.size:
        report.notes.append(f"metadata unreadable (length {meta_len})")
        return
    meta = raw[_HEADER_FMT.size + 2 : _HEADER_FMT.size + 2 + meta_len]
    if len(meta) < _META.size:
        return
    (_nr, _pr, _ap, _pp, num_nodes, num_edges, num_points) = _META.unpack(meta)
    if max(num_nodes, num_edges, num_points) > (1 << 40):
        report.notes.append("metadata counts implausible; ignoring them")
        return
    if not frame_ok:
        report.notes.append(
            "header checksum failed; metadata counts taken on faith"
        )
    report.expected = {
        "nodes": num_nodes,
        "edges": num_edges,
        "points": num_points,
    }


def _parse_slotted(payload: bytes) -> dict[int, tuple[bytes, bool]] | None:
    """slot -> (record bytes, is_overflow_stub), or None when not slotted."""
    n_slots, free_end = _PAGE_HEADER.unpack_from(payload, 0)
    if n_slots == 0:
        return {}
    if free_end == 0:  # fresh-page sentinel: a populated page never has it
        return None
    slot_dir_end = _PAGE_HEADER.size + n_slots * _SLOT.size
    if slot_dir_end > free_end or free_end > len(payload):
        return None
    out: dict[int, tuple[bytes, bool]] = {}
    for slot in range(n_slots):
        offset, length = _SLOT.unpack_from(
            payload, _PAGE_HEADER.size + slot * _SLOT.size
        )
        is_overflow = bool(length & _OVERFLOW_FLAG)
        length &= ~_OVERFLOW_FLAG
        if offset < slot_dir_end or offset + length > len(payload):
            return None
        if is_overflow and length != _OVERFLOW_STUB.size:
            return None
        out[slot] = (payload[offset : offset + length], is_overflow)
    return out


def _parse_leaf(payload: bytes) -> list[tuple[int, int]] | None:
    """(key, value) entries of a plausible B+-tree leaf, else None."""
    is_leaf, count, _next = _NODE_HEADER.unpack_from(payload, 0)
    if is_leaf != 1 or count == 0:
        return None
    if _NODE_HEADER.size + count * _TREE_ENTRY.size > len(payload):
        return None
    entries = []
    last_key = None
    for i in range(count):
        key, value = _TREE_ENTRY.unpack_from(
            payload, _NODE_HEADER.size + i * _TREE_ENTRY.size
        )
        if last_key is not None and key <= last_key:
            return None
        last_key = key
        entries.append((key, value))
    return entries


def _decode_adjacency(record: bytes) -> list[tuple[int, float, int]] | None:
    if len(record) < _ADJ_HEADER.size:
        return None
    if (len(record) - _ADJ_HEADER.size) % _ADJ_ENTRY.size:
        return None
    (count,) = _ADJ_HEADER.unpack_from(record, 0)
    if count != (len(record) - _ADJ_HEADER.size) // _ADJ_ENTRY.size:
        return None
    entries = []
    for i in range(count):
        nbr, weight, first = _ADJ_ENTRY.unpack_from(
            record, _ADJ_HEADER.size + i * _ADJ_ENTRY.size
        )
        if not (math.isfinite(weight) and weight > 0) or first < -1:
            return None
        entries.append((nbr, weight, first))
    return entries


def _decode_group(record: bytes) -> tuple[int, int, list[tuple[int, float, int]]] | None:
    if len(record) < _GROUP_HEADER.size + _GROUP_ENTRY.size:
        return None
    if (len(record) - _GROUP_HEADER.size) % _GROUP_ENTRY.size:
        return None
    u, v, count = _GROUP_HEADER.unpack_from(record, 0)
    if u == v or count != (len(record) - _GROUP_HEADER.size) // _GROUP_ENTRY.size:
        return None
    members = []
    last_offset = None
    for i in range(count):
        pid, offset, label = _GROUP_ENTRY.unpack_from(
            record, _GROUP_HEADER.size + i * _GROUP_ENTRY.size
        )
        if not math.isfinite(offset) or offset < 0:
            return None
        if last_offset is not None and offset < last_offset:
            return None
        last_offset = offset
        members.append((pid, offset, label))
    return u, v, members


class _Salvager:
    """One salvage pass over a raw file image."""

    def __init__(self, raw: bytes, page_size: int, report: RepairReport) -> None:
        self.report = report
        self.page_size = page_size
        self.good, bad = _split_frames(raw, page_size)
        report.page_size = page_size
        stride = page_size + _CHECKSUM_BYTES
        present = len(raw) // stride
        # A truncated file loses its tail: every declared-but-absent page
        # (header set ``total_pages`` above the frame count) plus a torn
        # trailing partial frame counts as quarantined, so ``lost_pages``
        # stays exact.
        declared = max(present, report.total_pages or 0)
        if len(raw) % stride and declared == present:
            declared = present + 1
        bad.extend(range(present, declared))
        report.total_pages = declared
        report.quarantined_pages = bad
        # Header page damage is reported via notes; it is not a data page.
        self.records: dict[tuple[int, int], tuple[bytes, bool]] = {}
        self.chain_pids: set[int] = set()

    # -- phase: record pages ------------------------------------------
    def collect_records(self) -> None:
        for pid, payload in self.good.items():
            if pid == 0:
                continue
            slots = _parse_slotted(payload)
            if not slots:
                continue
            for slot, (data, is_overflow) in slots.items():
                self.records[(pid, slot)] = (data, is_overflow)

    def resolve(self, pid: int, slot: int) -> bytes | None:
        """Record bytes for a (page, slot), following overflow chains."""
        entry = self.records.get((pid, slot))
        if entry is None:
            return None
        data, is_overflow = entry
        if not is_overflow:
            return data
        try:
            total_len, first_pid = _OVERFLOW_STUB.unpack(data)
        except struct.error:
            return None
        out = bytearray()
        seen: set[int] = set()
        chunk_capacity = self.page_size - _CHAIN_HEADER.size
        cur = first_pid
        while cur != 0 and len(out) < total_len:
            if cur in seen:  # a damaged pointer made a cycle
                return None
            seen.add(cur)
            payload = self.good.get(cur)
            if payload is None:  # chain page quarantined
                return None
            (next_pid,) = _CHAIN_HEADER.unpack_from(payload, 0)
            need = min(chunk_capacity, total_len - len(out))
            out += payload[_CHAIN_HEADER.size : _CHAIN_HEADER.size + need]
            cur = next_pid
        if len(out) != total_len:
            return None
        self.chain_pids.update(seen)
        return bytes(out)

    # -- phase: index leaves ------------------------------------------
    def collect_mappings(self) -> tuple[dict, dict, set]:
        """(node -> adjacency entries, first_pid -> group, consumed rids)."""
        adjacency: dict[int, list[tuple[int, float, int]]] = {}
        groups: dict[int, tuple[int, int, list[tuple[int, float, int]]]] = {}
        consumed: set[tuple[int, int]] = set()
        total = self.report.total_pages or 0
        for pid in sorted(self.good):
            if pid == 0 or pid in self.chain_pids:
                continue
            entries = _parse_leaf(self.good[pid])
            if entries is None:
                continue
            # A real leaf's rids always point inside the file.
            if any(not (1 <= value >> 16 < total) for _, value in entries):
                continue
            for key, rid in entries:
                rpid, slot = rid >> 16, rid & 0xFFFF
                record = self.resolve(rpid, slot)
                if record is None:
                    continue
                group = _decode_group(record)
                if group is not None and group[2][0][0] == key:
                    if key not in groups:
                        groups[key] = group
                    elif groups[key] != group:
                        self.report.conflicts += 1
                    consumed.add((rpid, slot))
                    continue
                adj = _decode_adjacency(record)
                if adj is not None:
                    if key not in adjacency:
                        adjacency[key] = adj
                    elif adjacency[key] != adj:
                        self.report.conflicts += 1
                    consumed.add((rpid, slot))
        return adjacency, groups, consumed

    # -- phase: orphan groups -----------------------------------------
    def collect_orphan_groups(self, groups: dict, consumed: set) -> None:
        """Point groups whose index leaf died are still self-describing."""
        for (pid, slot), (_data, _ovf) in sorted(self.records.items()):
            if (pid, slot) in consumed or pid in self.chain_pids:
                continue
            record = self.resolve(pid, slot)
            if record is None:
                continue
            group = _decode_group(record)
            if group is None:
                continue
            key = group[2][0][0]
            if key not in groups:
                groups[key] = group
                self.report.notes.append(
                    f"salvaged orphan point group ({group[0]}, {group[1]}) "
                    f"from page {pid} (index entry lost)"
                )
            elif groups[key] != group:
                self.report.conflicts += 1

    # -- phase: assembly ----------------------------------------------
    def assemble(
        self, adjacency: dict, groups: dict
    ) -> tuple[SpatialNetwork, PointSet]:
        report = self.report
        net = SpatialNetwork()
        weights: dict[tuple[int, int], float | None] = {}
        for node, entries in adjacency.items():
            net.add_node(node)
            for nbr, weight, _first in entries:
                edge = normalize_edge(node, nbr)
                known = weights.get(edge)
                if known is None:
                    weights[edge] = weight
                elif known != weight:
                    weights[edge] = None  # contradictory copies: drop it
        for (u, v), weight in sorted(weights.items()):
            if weight is None:
                report.conflicts += 1
                report.notes.append(
                    f"edge ({u}, {v}): surviving copies disagree on the "
                    "weight; dropped"
                )
                continue
            net.add_node(u)
            net.add_node(v)
            net.add_edge(u, v, weight)

        points = PointSet(net)
        seen_pids: set[int] = set()
        for key in sorted(groups):
            u, v, members = groups[key]
            if not net.has_edge(u, v):
                report.notes.append(
                    f"point group ({u}, {v}): its edge did not survive; "
                    f"{len(members)} point(s) lost"
                )
                continue
            weight = net.edge_weight(u, v)
            for pid, offset, label in members:
                if offset > weight or pid in seen_pids:
                    report.conflicts += 1
                    continue
                seen_pids.add(pid)
                points.add(
                    u, v, offset, point_id=pid,
                    label=None if label == _NO_LABEL else label,
                )
        report.salvaged = {
            "nodes": net.num_nodes,
            "edges": net.num_edges,
            "points": len(points),
        }
        return net, points


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def salvage_store(
    path: str | os.PathLike,
    page_size_hint: int | None = None,
) -> tuple[SpatialNetwork | None, PointSet | None, RepairReport]:
    """Raw-scan a (possibly corrupt) store and reconstruct what survives.

    Returns ``(network, points, report)``; the first two are ``None``
    when ``report.recoverable`` is false.  Damaged input never raises —
    only an unreadable *file* (missing, permission) does, as ``OSError``.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        raw = fh.read()
    report = RepairReport(source=path)
    _obs_add("repair.salvage_runs")
    if not raw:
        report.recoverable = False
        report.notes.append("file is empty")
        return None, None, report
    page_size = _parse_header(raw, report, page_size_hint)
    if page_size is None:
        report.recoverable = False
        report.notes.append("could not determine the page size; giving up")
        return None, None, report
    salvager = _Salvager(raw, page_size, report)
    salvager.collect_records()
    adjacency, groups, consumed = salvager.collect_mappings()
    salvager.collect_orphan_groups(groups, consumed)
    net, points = salvager.assemble(adjacency, groups)
    for pid in report.quarantined_pages:
        _obs_add("repair.quarantined_pages")
    return net, points, report


def repair_store(
    src: str | os.PathLike,
    dst: str | os.PathLike | None = None,
    page_size_hint: int | None = None,
) -> RepairReport:
    """Salvage ``src`` and, when recoverable, rebuild a clean store at ``dst``.

    The rebuilt store gets fresh B+-tree indexes over the surviving
    records (``NetworkStore.build``), so it always reopens cleanly and
    passes ``verify_store``.  The returned report carries the exact
    ``lost_pages`` / ``lost`` accounting; ``dst`` is left untouched when
    nothing was recoverable.
    """
    from repro.storage.netstore import NetworkStore

    net, points, report = salvage_store(src, page_size_hint=page_size_hint)
    if net is None:
        return report
    if dst is not None:
        dst = os.fspath(dst)
        page_size = report.page_size or 4096
        NetworkStore.build(dst, net, points, page_size=page_size).close()
        report.output = dst
    return report
