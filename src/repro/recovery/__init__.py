"""Recovery layer: checkpoints, store repair, and transient-I/O retry.

Three facilities that turn the failure *detection* of :mod:`repro.faults`
and the paged-file CRCs into failure *recovery*:

* :mod:`repro.recovery.checkpoint` — crash-consistent snapshots of
  long-running clustering jobs (``repro cluster --checkpoint``);
* :mod:`repro.recovery.repair` — salvage of corrupt stores
  (``repro repair``), rebuilding indexes from surviving records with an
  exact loss account;
* :mod:`repro.recovery.retry` — capped exponential backoff around the
  physical page-read chokepoint for transient I/O errors.

``repair`` is imported lazily: it depends on the storage stack, which
itself imports the retry state from this package.
"""

from __future__ import annotations

from repro.recovery.checkpoint import (
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
    validate_meta,
)
from repro.recovery.retry import RetryPolicy, call_with_retry, retrying

__all__ = [
    "CheckpointManager",
    "load_checkpoint",
    "save_checkpoint",
    "validate_meta",
    "RetryPolicy",
    "call_with_retry",
    "retrying",
    "RepairReport",
    "salvage_store",
    "repair_store",
]


def __getattr__(name: str):
    if name in ("RepairReport", "salvage_store", "repair_store"):
        from repro.recovery import repair

        return getattr(repair, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
