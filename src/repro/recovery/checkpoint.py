"""Crash-consistent checkpoints for long-running clustering jobs.

A checkpoint is one small file holding a JSON snapshot of an algorithm's
resumable state, written with the same durability conventions as the
paged store (format version 2): a magic + version header, an explicit
payload length, a CRC32 trailer over the payload, and an atomic
tmp + flush + fsync + rename publish.  A crash at any instant therefore
leaves either the previous complete checkpoint or the new complete
checkpoint at ``path`` — never a torn hybrid — and any bit rot in the
file surfaces as a typed :class:`~repro.exceptions.CheckpointError`
instead of silently resuming from garbage.

On-disk layout (little-endian)::

    offset  size  field
    0       4     magic  b"RPCK"
    4       2     format version (currently 1)
    6       4     payload length in bytes
    10      n     payload: UTF-8 JSON {"meta": {...}, "state": {...}}
    10+n    4     CRC32 of the payload

``meta`` records what the snapshot belongs to (algorithm name, workload
fingerprint, parameters) and is validated on resume; ``state`` is the
algorithm-specific resumable state (see the ``_checkpoint_state`` /
``_restore_state`` hooks on each clusterer).

Checkpoints are only ever taken at deterministic iteration boundaries,
so "resume from last snapshot, replay forward" reproduces the fault-free
run exactly (see ``docs/robustness.md``).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Callable

from repro.exceptions import CheckpointError
from repro.obs.core import add as _obs_add

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
    "validate_meta",
]

CHECKPOINT_MAGIC = b"RPCK"
CHECKPOINT_VERSION = 1
_HEADER = struct.Struct("<4sHI")  # magic, version, payload length
_TRAILER = struct.Struct("<I")  # CRC32 of the payload


def save_checkpoint(path: str | os.PathLike, meta: dict, state: dict) -> None:
    """Atomically write a snapshot of ``state`` (tagged ``meta``) to ``path``.

    The snapshot is staged at ``path + ".tmp"``, flushed and fsynced, then
    renamed over ``path`` — mirroring ``NetworkStore.build``.  Either the
    old or the new checkpoint survives a crash, never a partial file.
    """
    path = os.fspath(path)
    payload = json.dumps({"meta": meta, "state": state}).encode("utf-8")
    blob = (
        _HEADER.pack(CHECKPOINT_MAGIC, CHECKPOINT_VERSION, len(payload))
        + payload
        + _TRAILER.pack(zlib.crc32(payload) & 0xFFFFFFFF)
    )
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _obs_add("checkpoint.saves")


def load_checkpoint(path: str | os.PathLike) -> dict:
    """Read and validate a checkpoint; returns ``{"meta": ..., "state": ...}``.

    Raises :class:`CheckpointError` on any damage: missing file, bad magic,
    unknown version, truncation, length mismatch, CRC mismatch, or a payload
    that is not the expected JSON object.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if len(raw) < _HEADER.size + _TRAILER.size:
        raise CheckpointError(f"{path}: checkpoint truncated ({len(raw)} bytes)")
    magic, version, length = _HEADER.unpack_from(raw, 0)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a checkpoint file (bad magic {magic!r})")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint version {version} "
            f"(expected {CHECKPOINT_VERSION})"
        )
    if len(raw) != _HEADER.size + length + _TRAILER.size:
        raise CheckpointError(
            f"{path}: checkpoint length mismatch (header says {length} payload "
            f"bytes, file has {len(raw) - _HEADER.size - _TRAILER.size})"
        )
    payload = raw[_HEADER.size : _HEADER.size + length]
    (crc,) = _TRAILER.unpack_from(raw, _HEADER.size + length)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CheckpointError(f"{path}: checkpoint CRC32 mismatch")
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: checkpoint payload is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or "meta" not in doc or "state" not in doc:
        raise CheckpointError(f"{path}: checkpoint payload missing meta/state")
    return doc


class CheckpointManager:
    """Periodic checkpoint writer handed to a clusterer.

    ``tick(state_fn)`` is called by the algorithm at each deterministic
    iteration boundary; every ``every``-th tick materialises the state
    (``state_fn()``) and saves it.  Phase boundaries that must always be
    captured call :meth:`save` directly.  ``state_fn`` is only invoked on
    ticks that actually save, so the snapshot cost is paid once per
    ``every`` iterations.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        every: int = 1,
        meta: dict | None = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every!r}")
        self.path = os.fspath(path)
        self.every = int(every)
        self.meta: dict = dict(meta or {})
        self.ticks = 0
        self.saves = 0

    def tick(self, state_fn: Callable[[], dict]) -> None:
        self.ticks += 1
        if self.ticks % self.every == 0:
            self.save(state_fn())

    def save(self, state: dict) -> None:
        save_checkpoint(self.path, self.meta, state)
        self.saves += 1

    def remove(self) -> None:
        """Delete the checkpoint (called after a successful run)."""
        try:
            os.remove(self.path)
        except FileNotFoundError:
            pass


def validate_meta(meta: dict, expected: dict[str, Any]) -> None:
    """Check a loaded checkpoint's meta against the resuming run.

    ``expected`` maps field name to the value the resuming run computed
    (algorithm name, workload fingerprint, parameters).  Any mismatch
    raises :class:`CheckpointError` — resuming a run against the wrong
    workload would silently produce garbage.
    """
    for key, want in expected.items():
        got = meta.get(key)
        if got != want:
            raise CheckpointError(
                f"checkpoint does not match this run: {key} is {got!r} in the "
                f"snapshot but {want!r} here"
            )
