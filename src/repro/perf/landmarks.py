"""Landmark (ALT) distance bounds for spatial networks.

A *landmark* is a network node from which shortest-path distances to every
reachable node are precomputed (one Dijkstra per landmark).  By the triangle
inequality, for any nodes ``u``, ``v`` and landmark ``l``

    d(u, v) >= |d(l, u) - d(l, v)|        (lower bound)
    d(u, v) <= d(l, u) + d(l, v)          (upper bound)

so the tables give cheap two-sided bounds on any network distance without
running a search.  Unlike the Euclidean heuristic of
:mod:`repro.network.astar` — admissible only when edge weights dominate the
straight-line distance — the landmark bounds hold for *any* positive weight
measure (travel time, toll cost, ...), and the lower bound is a *consistent*
A* heuristic: ``lb(u, t) <= W(u, v) + lb(v, t)`` follows from a second
triangle inequality, so an A* search guided by it settles every vertex at
its exact distance and returns bit-identical results to plain Dijkstra.

Landmarks are chosen by **farthest-point sampling**: the first landmark is
the smallest node id, each further landmark is the node maximising the
distance to its nearest chosen landmark (unreached nodes — other connected
components — count as infinitely far and are preferred, so every component
eventually receives a landmark).  All tie-breaks are by smallest node id,
making the construction deterministic.

Objects on edges participate through Definition 2's direct distances: the
distance from a landmark to a point ``p`` on edge ``(u, v)`` is exactly

    d(l, p) = min(d(l, u) + pos_p,  d(l, v) + W(u, v) - pos_p)

because every path into ``p`` enters its edge through one of the endpoints.
:meth:`LandmarkIndex.point_vector` evaluates this per landmark, giving each
object an L-dimensional *landmark coordinate vector*; bounds between two
objects are computed coordinate-wise by :func:`vector_lower_bound` /
:func:`vector_upper_bound`.

Unreachable entries are ``math.inf`` and carry real information: if exactly
one of two locations is unreachable from some landmark they lie in different
connected components, so their true distance *is* infinite and the lower
bound returns ``inf``.  When both are unreachable the landmark says nothing
and is skipped.
"""

from __future__ import annotations

import math

from repro.network.dijkstra import single_source
from repro.network.points import NetworkPoint
from repro.obs.core import STATE as _OBS, add as _obs_add, span as _span

__all__ = ["LandmarkIndex", "vector_lower_bound", "vector_upper_bound"]


def vector_lower_bound(a: tuple, b: tuple) -> float:
    """``max_l |a_l - b_l|``: a lower bound on the distance between two
    locations with landmark coordinate vectors ``a`` and ``b``.

    ``inf`` coordinates follow component semantics: a landmark reaching
    exactly one of the two locations proves they are disconnected (the
    bound is ``inf``); a landmark reaching neither proves nothing and is
    skipped.
    """
    best = 0.0
    for x, y in zip(a, b):
        if math.isinf(x):
            if math.isinf(y):
                continue
            return math.inf
        if math.isinf(y):
            return math.inf
        diff = x - y if x >= y else y - x
        if diff > best:
            best = diff
    return best


def vector_upper_bound(a: tuple, b: tuple) -> float:
    """``min_l (a_l + b_l)``: an upper bound on the distance between two
    locations with landmark coordinate vectors ``a`` and ``b`` (``inf``
    when no landmark reaches both)."""
    best = math.inf
    for x, y in zip(a, b):
        s = x + y
        if s < best:
            best = s
    return best


class LandmarkIndex:
    """Precomputed node→landmark distance tables over one network.

    Parameters
    ----------
    network:
        Any backend with ``nodes()``, ``neighbors(node)`` and
        ``edge_weight(u, v)`` — the in-memory network and the disk store
        both qualify; coordinates are *not* required.
    num_landmarks:
        How many landmarks to select (clamped to the node count).  Each
        costs one full Dijkstra at build time and one float per node of
        memory; 4–16 is the useful range (see ``docs/performance.md``).

    Notes
    -----
    The index is built for a **fixed network**: mutating the network's
    edges after construction silently invalidates the tables (point-set
    mutations are fine — points never affect node-to-node distances).
    Build a fresh index after changing the network.
    """

    def __init__(self, network, num_landmarks: int = 8) -> None:
        self._network = network
        self.landmarks: list[int] = []
        self._tables: list[dict[int, float]] = []
        #: Characteristic distance magnitude (the largest finite table
        #: entry, at least 1.0).  Consumers that compare float bounds
        #: against float distances size their rounding tolerance from it
        #: — see the slack discussion in :mod:`repro.perf.accel`.
        self.scale = 1.0
        with _span("perf.landmarks.build"):
            self._build(int(num_landmarks))
        for table in self._tables:
            for value in table.values():
                if value > self.scale and not math.isinf(value):
                    self.scale = value
        if _OBS.enabled:
            _obs_add("perf.landmarks.built", len(self.landmarks))

    def _build(self, num_landmarks: int) -> None:
        nodes = sorted(self._network.nodes())
        if not nodes or num_landmarks <= 0:
            return
        # Farthest-point sampling, fully deterministic: start from the
        # smallest node id; prefer unreached nodes (smallest id first) so
        # disconnected components each get a landmark; otherwise take the
        # node farthest from every chosen landmark (ties by smallest id).
        nearest: dict[int, float] = {n: math.inf for n in nodes}
        candidate = nodes[0]
        for _ in range(min(num_landmarks, len(nodes))):
            table = single_source(self._network, candidate)
            self.landmarks.append(candidate)
            self._tables.append(table)
            best_node = None
            best_dist = -1.0
            for n in nodes:
                d = table.get(n, math.inf)
                if d < nearest[n]:
                    nearest[n] = d
                # inf > any finite distance, and the ascending id order
                # means a strict comparison keeps the smallest id on ties.
                if nearest[n] > best_dist:
                    best_node, best_dist = n, nearest[n]
            if best_node is None or best_dist <= 0.0:
                break  # every node is itself a landmark already
            candidate = best_node

    # ------------------------------------------------------------------
    # Node-level bounds
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.landmarks)

    def node_vector(self, node: int) -> tuple[float, ...]:
        """Landmark coordinate vector of a node (``inf`` where unreached)."""
        return tuple(t.get(node, math.inf) for t in self._tables)

    def node_lower_bound(self, u: int, v: int) -> float:
        """Admissible lower bound on the node distance ``d(u, v)``."""
        if u == v:
            return 0.0
        best = 0.0
        for t in self._tables:
            du = t.get(u)
            dv = t.get(v)
            if du is None:
                if dv is None:
                    continue
                return math.inf
            if dv is None:
                return math.inf
            diff = du - dv if du >= dv else dv - du
            if diff > best:
                best = diff
        return best

    # ------------------------------------------------------------------
    # Point-level coordinates
    # ------------------------------------------------------------------
    def point_vector(self, point: NetworkPoint) -> tuple[float, ...]:
        """Landmark coordinate vector of an object on an edge.

        Exact, not a bound: every path from a landmark into ``point``
        enters the point's edge through one of its endpoints, so
        ``d(l, p) = min(d(l, u) + pos, d(l, v) + W - pos)`` — this equals
        the true distance in the point-augmented graph as well, because
        inserting points on edges preserves all distances.
        """
        weight = self._network.edge_weight(point.u, point.v)
        off = point.offset
        out = []
        for t in self._tables:
            du = t.get(point.u, math.inf)
            dv = t.get(point.v, math.inf)
            out.append(min(du + off, dv + (weight - off)))
        return tuple(out)
