"""Distance acceleration: landmark (ALT) bounds + shared memoization.

Everything in this package is an *exactness-preserving* accelerator: the
guided searches, screens, and caches return bit-identical results to the
plain primitives in :mod:`repro.network` and :mod:`repro.core` (a
property-tested guarantee — see ``tests/test_perf.py``), they just get
there settling fewer vertices and recomputing less.  See
``docs/performance.md`` for tuning guidance.
"""

from repro.perf.accel import DistanceAccelerator, unaccelerated_point_distance
from repro.perf.cache import ENTRY_BYTES, DistanceCache
from repro.perf.landmarks import (
    LandmarkIndex,
    vector_lower_bound,
    vector_upper_bound,
)
from repro.perf.persist import (
    PersistedLandmarkIndex,
    build_index_file,
    load_index,
    load_index_or_degrade,
    network_fingerprint,
    save_index,
    verify_index,
)

__all__ = [
    "DistanceAccelerator",
    "DistanceCache",
    "ENTRY_BYTES",
    "LandmarkIndex",
    "PersistedLandmarkIndex",
    "build_index_file",
    "load_index",
    "load_index_or_degrade",
    "network_fingerprint",
    "save_index",
    "unaccelerated_point_distance",
    "vector_lower_bound",
    "vector_upper_bound",
]
