"""A thread-safe, bounded, memoizing distance cache.

One :class:`DistanceCache` can be shared by every consumer that memoizes
something derived from a point set: the accelerated point-to-point searches
(pair-distance entries), the k-medoids swap loop across restarts, and the
:class:`~repro.serve.QueryService` workers (whole query results for warm
repeated-query throughput).  Keys are arbitrary hashable tuples whose first
element names the entry kind (``("p2p", 3, 17)``, ``("range", 4, 0.5,
True)``), so heterogeneous entries share one memory budget.

Capacity is given in **megabytes** and converted to an entry count using a
documented per-entry estimate (:data:`ENTRY_BYTES` — key tuple + float +
OrderedDict slot; query-result entries are larger, so treat the figure as
an order-of-magnitude budget, not an accounting guarantee).  Eviction is
LRU.  A cache built with ``max_mb = 0`` is *disabled*: :attr:`enabled` is
False and callers are expected to skip it entirely, keeping the
no-acceleration code path free of even the lock acquisition.

Invalidation is **not** automatic here — the cache has no idea which point
set its entries were derived from.  Consumers register
:meth:`clear` with :meth:`repro.network.AugmentedView.add_invalidation_hook`
(the :class:`~repro.perf.DistanceAccelerator` does this on construction),
making ``AugmentedView.invalidate`` the single notification point after a
point-set mutation.

Counters (local, always on, plus ``perf.cache.*`` obs counters when
:mod:`repro.obs` is enabled): ``hits``, ``misses``, ``evictions``,
``invalidations``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.core import STATE as _OBS, add as _obs_add

__all__ = ["DistanceCache", "ENTRY_BYTES"]

#: Rough per-entry memory estimate used to convert megabytes to an entry
#: count: a small key tuple (~3 ints/floats), a float value, and the
#: OrderedDict link overhead, measured at ~200 bytes on CPython 3.12.
ENTRY_BYTES = 200

_MISS = object()


class DistanceCache:
    """Bounded LRU memo for distances and query results.

    Parameters
    ----------
    max_mb:
        Memory budget in megabytes; converted to ``capacity`` entries via
        :data:`ENTRY_BYTES`.  ``0`` disables the cache (``enabled`` False,
        every ``get`` a miss, ``put`` a no-op).
    entry_bytes:
        Override the per-entry estimate (tests use small values to force
        evictions deterministically).
    """

    def __init__(self, max_mb: float, entry_bytes: int = ENTRY_BYTES) -> None:
        if max_mb < 0:
            raise ValueError(f"max_mb must be >= 0, got {max_mb!r}")
        if entry_bytes <= 0:
            raise ValueError(f"entry_bytes must be > 0, got {entry_bytes!r}")
        self.max_mb = float(max_mb)
        self.capacity = int(max_mb * 1024 * 1024 // entry_bytes)
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key, default=None):
        """The cached value for ``key`` (refreshing its recency), else
        ``default``."""
        with self._lock:
            value = self._data.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                if _OBS.enabled:
                    _obs_add("perf.cache.misses")
                return default
            self._data.move_to_end(key)
            self.hits += 1
            if _OBS.enabled:
                _obs_add("perf.cache.hits")
            return value

    def put(self, key, value) -> None:
        """Insert/refresh ``key``, evicting the least recently used entry
        when over capacity.  A no-op on a disabled cache."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
                if _OBS.enabled:
                    _obs_add("perf.cache.evictions")

    def clear(self) -> None:
        """Drop every entry (the invalidation hook target)."""
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            self.invalidations += 1
            if _OBS.enabled:
                _obs_add("perf.cache.invalidations")
                if dropped:
                    _obs_add("perf.cache.invalidated_entries", dropped)

    def invalidate_region(self, point_ids) -> int:
        """Drop only what a localized point mutation can have changed.

        Point insertions/removals never alter the network distance
        between two *surviving* points (objects do not carry weight in
        the augmented view), so a pair-distance entry stays valid unless
        one of its endpoints is in ``point_ids``.  Every other entry kind
        — range and kNN result sets, or anything this cache does not
        recognise — is dropped conservatively: a result set can gain or
        lose a member for any anchor, and the cached ε values are not
        recoverable from the key alone.  Returns the number of entries
        dropped.  Edge reweighs must use :meth:`clear` instead — they
        change distances globally.
        """
        affected = frozenset(point_ids)
        with self._lock:
            doomed = []
            for key in self._data:
                if (
                    isinstance(key, tuple)
                    and len(key) == 3
                    and key[0] == "p2p"
                    and key[1] not in affected
                    and key[2] not in affected
                ):
                    continue
                doomed.append(key)
            for key in doomed:
                del self._data[key]
            self.invalidations += 1
            if _OBS.enabled:
                _obs_add("perf.cache.region_invalidations")
                if doomed:
                    _obs_add("perf.cache.invalidated_entries", len(doomed))
            return len(doomed)

    def hit_ratio(self) -> float | None:
        """Hits / (hits + misses) over the cache's lifetime, or ``None``
        before the first lookup — the ``perf.cache.hit_ratio`` gauge."""
        with self._lock:
            lookups = self.hits + self.misses
            if lookups == 0:
                return None
            return self.hits / lookups

    def stats(self) -> dict[str, int]:
        """A snapshot of the local counters (always maintained, even with
        :mod:`repro.obs` disabled)."""
        with self._lock:
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    def __repr__(self) -> str:
        return (
            f"DistanceCache(max_mb={self.max_mb}, capacity={self.capacity}, "
            f"entries={len(self)})"
        )
