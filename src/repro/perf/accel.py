"""Exactness-preserving distance acceleration over one augmented view.

:class:`DistanceAccelerator` bundles the two mechanisms of
:mod:`repro.perf` — landmark (ALT) bounds and the shared
:class:`~repro.perf.DistanceCache` — behind the same query signatures as
the unaccelerated primitives, with one hard guarantee: **every accelerated
search returns bit-identical results to its plain counterpart** (a
property-tested invariant).  Acceleration only ever skips work a plain
search would provably have wasted:

* :meth:`point_distance` — goal-directed Dijkstra over the point-augmented
  graph: pushes whose distance-so-far plus landmark lower bound to the
  target exceed the landmark *upper* bound are outside the shortest-path
  corridor and dropped (settling a fraction of plain Dijkstra's vertices),
  memoized in the shared cache.
* :meth:`range_query` — prefilters the objects whose landmark lower bound
  to the query is ≤ ε and terminates the expansion as soon as all of them
  are settled; non-candidates cannot be within ε, so the result set is
  untouched.
* :meth:`knn_query` — computes landmark *upper* bounds to every object;
  the k-th smallest upper bound caps the true k-th-neighbour distance, so
  heap pushes beyond it are dropped without changing the settle order of
  any vertex that matters.

**Floating-point discipline.**  Bit-identity is structural, not hopeful.
The accelerated searches keep the plain searches' heap ordering and
relaxation arithmetic *exactly* — bounds only ever remove work, they never
reorder it, so every float the caller sees is produced by the same
sequence of operations as in the plain code.  (Textbook ALT runs A*
ordered by ``g + h``; that is exact in real arithmetic but the heuristic's
last-ulp rounding can flip which of two near-tied shortest paths is
reported, which is why we don't.)  And because the bounds themselves are
float-valued, every comparison of a bound against a distance threshold
carries a relative slack of :data:`_REL_SLACK` scaled by the index's
characteristic magnitude — about four orders of magnitude wider than the
worst accumulated rounding error, and about six narrower than any distance
the pruning actually needs to discriminate.  Slack only weakens pruning;
it never changes a result.
* :meth:`screen_swap` — a sound k-medoids swap rejection test: when the
  lower-bounded candidate evaluation ``Σ_p min(d_p, lb)`` already reaches
  the current ``R``, the swap would certainly be rejected and the full
  (incremental) evaluation is skipped.  The screen consumes no randomness
  and mirrors rejected-swap bookkeeping, so the clustering trajectory is
  unchanged.
* :meth:`isolated_points` — an ε-Link prefilter: per-landmark
  nearest-coordinate gaps lower-bound each object's distance to its
  nearest neighbour; objects provably farther than ε from everything form
  singleton clusters without running their expansion.

Staleness is handled through the **single invalidation path** of
:class:`~repro.network.AugmentedView`: the accelerator registers a hook at
construction, and every public method first compares the point set's
``version`` counter against the one it captured — a mutation (with or
without an explicit ``invalidate()`` call) drops the memoized landmark
point vectors and clears the shared cache before anything is served from
them.  The landmark node tables themselves depend only on the network, so
point mutations never invalidate them; mutating the *network* requires a
fresh accelerator (see :class:`~repro.perf.LandmarkIndex`).
"""

from __future__ import annotations

import heapq
import math

from repro.exceptions import UnreachableError
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.network.augmented import AugmentedView, NODE, POINT, point_vertex
from repro.network.points import NetworkPoint
from repro.network.queries import (
    _result_order,
    knn_query as _plain_knn,
    range_query as _plain_range,
)
from repro.obs.core import STATE as _OBS, add as _obs_add
from repro.perf.cache import DistanceCache
from repro.perf.landmarks import (
    LandmarkIndex,
    vector_lower_bound,
    vector_upper_bound,
)
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = ["DistanceAccelerator", "unaccelerated_point_distance"]

_NO_ENTRY = object()

#: Relative safety slack applied whenever a float-valued landmark bound is
#: compared against a float-valued distance threshold.  Path sums and
#: bounds agree to ~1e-13 relative; meaningful distance gaps are >> 1e-6
#: relative.  1e-9 sits squarely between: pruning that matters survives,
#: pruning that would gamble on the last ulp is declined.
_REL_SLACK = 1e-9


def unaccelerated_point_distance(
    aug: AugmentedView, p: NetworkPoint, q: NetworkPoint
) -> tuple[float, int]:
    """``(distance, vertices_settled)`` by plain Dijkstra.

    The baseline the accelerated search is measured against — functionally
    :func:`repro.network.distance.network_distance`, but reporting the
    settled-vertex count and returning ``inf`` instead of raising for
    unreachable pairs.
    """
    if p.point_id == q.point_id:
        return 0.0, 0
    source = point_vertex(p.point_id)
    target = point_vertex(q.point_id)
    dist: dict = {}
    heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
    while heap:
        d, vertex = heapq.heappop(heap)
        if vertex in dist:
            continue
        dist[vertex] = d
        if vertex == target:
            return d, len(dist)
        for nbr, seg in aug.neighbors(vertex):
            if nbr not in dist:
                heapq.heappush(heap, (d + seg, nbr))
    return math.inf, len(dist)


class DistanceAccelerator:
    """Landmark bounds + shared memoization over one augmented view.

    Parameters
    ----------
    aug:
        The point-augmented view to accelerate.  The accelerator registers
        an invalidation hook on it; point-set mutations observed through
        the view (or its ``version`` counter) clear every memo.
    landmarks:
        Landmarks to select when ``index`` is not given; ``0`` disables
        the bound machinery (searches fall back to the plain primitives,
        still through the cache when one is present).
    cache_mb:
        Budget for a private :class:`DistanceCache` when ``cache`` is not
        given; ``0`` disables memoization entirely.
    index / cache:
        Pre-built shared components.  The :class:`~repro.serve.QueryService`
        builds one index and one cache and hands them to a per-worker
        accelerator, so all workers share the warm state; share them only
        between accelerators over the *same* network and point set.
    """

    def __init__(
        self,
        aug: AugmentedView,
        *,
        landmarks: int = 8,
        cache_mb: float = 16.0,
        index: LandmarkIndex | None = None,
        cache: DistanceCache | None = None,
    ) -> None:
        self._aug = aug
        if index is None and landmarks > 0:
            index = LandmarkIndex(aug.network, landmarks)
        if index is not None and len(index) == 0:
            index = None
        self._index = index
        if cache is None and cache_mb > 0:
            cache = DistanceCache(cache_mb)
        if cache is not None and not cache.enabled:
            cache = None
        self._cache = cache
        self._point_vectors: dict[int, tuple[float, ...]] = {}
        self._points_version = getattr(aug.points, "version", None)
        aug.add_invalidation_hook(self._on_invalidate)

    # ------------------------------------------------------------------
    # Invalidation (the single path: AugmentedView.invalidate)
    # ------------------------------------------------------------------
    def _on_invalidate(self) -> None:
        self._point_vectors.clear()
        self._points_version = getattr(self._aug.points, "version", None)
        if self._cache is not None:
            self._cache.clear()

    def _sync(self) -> None:
        """Catch point-set mutations that skipped ``invalidate()``.

        Cached answers can be served without touching the view's traversal
        machinery (whose own version auto-check would fire), so every
        public method re-checks the version first and routes a detected
        mutation through the one invalidation path.
        """
        version = getattr(self._aug.points, "version", None)
        if version != self._points_version:
            self._aug.invalidate()

    def note_mutation(self, point_ids, *, reweigh: bool = False) -> None:
        """Precise staleness handling for one applied live mutation.

        The live tier knows exactly which point ids a mutation can have
        affected, so instead of letting the version-drift auto-check
        escalate to a global ``invalidate()`` (which clears the whole
        shared cache), it calls this: the version watermark is advanced,
        only the affected landmark point vectors are dropped, and the
        shared cache keeps every entry the mutation provably left valid
        (see :meth:`DistanceCache.invalidate_region`).  A ``reweigh``
        changes network distances globally: every point vector and cache
        entry goes, and the landmark index itself must be degraded or
        replaced by the caller (node tables bind to edge weights).
        """
        self._points_version = getattr(self._aug.points, "version", None)
        if reweigh:
            self._point_vectors.clear()
            if self._cache is not None:
                self._cache.clear()
            return
        for pid in point_ids:
            self._point_vectors.pop(pid, None)
        if self._cache is not None:
            self._cache.invalidate_region(point_ids)

    def degrade_index(self) -> None:
        """Drop the landmark index (bounds machinery) permanently.

        Called when the network mutated under a persisted or in-memory
        index: serving its bounds could return wrong results, and the
        policy is *degrade, never silently rebuild* — an operator rebuilds
        with ``repro index build`` when they choose to.  Queries keep
        working through the plain (bit-identical) primitives.  The index
        object itself is only unreferenced, not closed — it may be shared
        by other accelerators; whoever opened it closes it.
        """
        self._index = None
        self._point_vectors.clear()

    # ------------------------------------------------------------------
    # Landmark coordinates and bounds
    # ------------------------------------------------------------------
    @property
    def index(self) -> LandmarkIndex | None:
        return self._index

    @property
    def cache(self) -> DistanceCache | None:
        return self._cache

    def point_vector(self, point: NetworkPoint) -> tuple[float, ...]:
        """Memoized landmark coordinate vector of an object."""
        vec = self._point_vectors.get(point.point_id)
        if vec is None:
            vec = self._index.point_vector(point)
            self._point_vectors[point.point_id] = vec
        return vec

    def lower_bound(self, p: NetworkPoint, q: NetworkPoint) -> float:
        """Admissible lower bound on ``d(p, q)`` (0 without an index)."""
        self._sync()
        if self._index is None or p.point_id == q.point_id:
            return 0.0
        return vector_lower_bound(self.point_vector(p), self.point_vector(q))

    def upper_bound(self, p: NetworkPoint, q: NetworkPoint) -> float:
        """Upper bound on ``d(p, q)`` (``inf`` without an index)."""
        self._sync()
        if p.point_id == q.point_id:
            return 0.0
        if self._index is None:
            return math.inf
        return vector_upper_bound(self.point_vector(p), self.point_vector(q))

    # ------------------------------------------------------------------
    # Point-to-point distance
    # ------------------------------------------------------------------
    def point_distance(self, p: NetworkPoint, q: NetworkPoint) -> float:
        """Exact ``d(p, q)`` via cached, landmark-pruned Dijkstra.

        Bit-identical to :func:`repro.network.distance.network_distance`,
        including raising :class:`UnreachableError` for disconnected
        pairs (the cache remembers unreachability too).
        """
        self._sync()
        if p.point_id == q.point_id:
            return 0.0
        key = None
        if self._cache is not None:
            # The key is directional on purpose: the search folds edge
            # weights left-to-right from the source, so d(p, q) and
            # d(q, p) can differ in the last ulp — serving the reversed
            # value would break bit-identity with the plain search.
            key = ("p2p", p.point_id, q.point_id)
            hit = self._cache.get(key, _NO_ENTRY)
            if hit is not _NO_ENTRY:
                if math.isinf(hit):
                    raise UnreachableError(
                        f"point {q.point_id} is not reachable from "
                        f"point {p.point_id}"
                    )
                return hit
        distance, settled = self._point_distance_search(p, q)
        if key is not None:
            self._cache.put(key, distance)
        if _OBS.enabled:
            _obs_add("perf.p2p.searches")
            _obs_add("perf.p2p.vertices_settled", settled)
        if math.isinf(distance):
            raise UnreachableError(
                f"point {q.point_id} is not reachable from point {p.point_id}"
            )
        return distance

    def _point_distance_search(
        self, p: NetworkPoint, q: NetworkPoint
    ) -> tuple[float, int]:
        """The corridor-pruned Dijkstra behind :meth:`point_distance`.

        Identical to :func:`unaccelerated_point_distance` — same heap
        keys, same relaxation sums, hence the same returned float — except
        that a push provably outside the shortest-path corridor
        (``d_so_far + lower_bound(nbr, q) > upper_bound(p, q)``, with
        slack) is dropped.  Every dropped vertex would have settled after
        the target, so the target's settled value is untouched.
        """
        aug = self._aug
        index = self._index
        if index is None:
            return unaccelerated_point_distance(aug, p, q)
        qvec = self.point_vector(q)
        pvec = self.point_vector(p)
        if math.isinf(vector_lower_bound(pvec, qvec)):
            # Some landmark reaches exactly one of the two points: they
            # are in different components, no search needed.
            return math.inf, 0
        ub = vector_upper_bound(pvec, qvec)
        corridor = ub + _REL_SLACK * (ub + index.scale)
        points = aug.points

        def h(vertex) -> float:
            kind, ident = vertex
            if kind == NODE:
                return vector_lower_bound(index.node_vector(ident), qvec)
            return vector_lower_bound(
                self.point_vector(points.get(ident)), qvec
            )

        source = point_vertex(p.point_id)
        target = point_vertex(q.point_id)
        dist: dict = {}
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
        while heap:
            d, vertex = heapq.heappop(heap)
            if vertex in dist:
                continue
            dist[vertex] = d
            if vertex == target:
                return d, len(dist)
            for nbr, seg in aug.neighbors(vertex):
                if nbr in dist:
                    continue
                nd = d + seg
                hn = h(nbr)
                if math.isinf(hn):
                    continue  # provably in a different component than q
                if nd + hn > corridor:
                    continue
                heapq.heappush(heap, (nd, nbr))
        return math.inf, len(dist)

    # ------------------------------------------------------------------
    # Range query (candidate prefilter + early termination)
    # ------------------------------------------------------------------
    def range_query(
        self,
        query: NetworkPoint,
        eps: float,
        include_query: bool = True,
    ) -> list[tuple[NetworkPoint, float]]:
        """All objects within ``eps``; identical to
        :func:`repro.network.queries.range_query`."""
        self._sync()
        if eps < 0:
            return []
        key = None
        if self._cache is not None:
            key = ("range", query.point_id, eps, include_query)
            hit = self._cache.get(key, _NO_ENTRY)
            if hit is not _NO_ENTRY:
                return list(hit)
        if self._index is None:
            results = _plain_range(self._aug, query, eps, include_query)
        else:
            results = self._range_accelerated(query, eps, include_query)
        if key is not None:
            self._cache.put(key, tuple(results))
        return results

    def _range_accelerated(
        self, query: NetworkPoint, eps: float, include_query: bool
    ) -> list[tuple[NetworkPoint, float]]:
        aug = self._aug
        qvec = self.point_vector(query)
        # Only candidates can lie within eps (the bound never
        # overestimates, and the slack absorbs its float rounding); once
        # all of them are settled the expansion is done, even though the
        # eps-ball's frontier is still unexplored.
        cutoff = eps + _REL_SLACK * (eps + self._index.scale)
        remaining = {
            p.point_id
            for p in aug.points
            if vector_lower_bound(qvec, self.point_vector(p)) <= cutoff
        }
        n_candidates = len(remaining)
        guard = _FAULTS.engaged or _RES.engaged
        budget = _FAULTS.budget if guard else None
        results: list[tuple[NetworkPoint, float]] = []
        source = point_vertex(query.point_id)
        dist: dict = {}
        best: dict = {source: 0.0}
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
        while heap:
            d, vertex = heapq.heappop(heap)
            if vertex in dist:
                continue
            if guard:
                if _FAULTS.engaged:
                    _fault("queries.settle")
                if _RES.engaged:
                    _res_check("queries.settle", partial=results)
                if budget is not None:
                    budget.spend_expansions(1, partial=results)
            dist[vertex] = d
            kind, ident = vertex
            if kind == POINT:
                if include_query or ident != query.point_id:
                    results.append((aug.points.get(ident), d))
                remaining.discard(ident)
                if not remaining:
                    break
            for nbr, weight in aug.neighbors(vertex):
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= eps and nd < best.get(nbr, math.inf):
                    best[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        results.sort(key=_result_order)
        if _OBS.enabled:
            _obs_add("perf.range.queries")
            _obs_add("perf.range.vertices_settled", len(dist))
            _obs_add("perf.range.candidates", n_candidates)
        return results

    # ------------------------------------------------------------------
    # kNN query (upper-bound push pruning)
    # ------------------------------------------------------------------
    def knn_query(
        self,
        query: NetworkPoint,
        k: int,
        include_query: bool = False,
    ) -> list[tuple[NetworkPoint, float]]:
        """The ``k`` nearest objects; identical to
        :func:`repro.network.queries.knn_query`."""
        self._sync()
        if k <= 0:
            return []
        key = None
        if self._cache is not None:
            key = ("knn", query.point_id, k, include_query)
            hit = self._cache.get(key, _NO_ENTRY)
            if hit is not _NO_ENTRY:
                return list(hit)
        if self._index is None:
            results = _plain_knn(self._aug, query, k, include_query)
        else:
            results = self._knn_accelerated(query, k, include_query)
        if key is not None:
            self._cache.put(key, tuple(results))
        return results

    def _knn_accelerated(
        self, query: NetworkPoint, k: int, include_query: bool
    ) -> list[tuple[NetworkPoint, float]]:
        aug = self._aug
        qvec = self.point_vector(query)
        # The k-th smallest upper bound caps the k-th neighbour's true
        # distance: pushes beyond it (plus float slack) can never
        # contribute a result, nor sit on a shortest path to one.
        ubs = [
            vector_upper_bound(qvec, self.point_vector(p))
            for p in aug.points
            if include_query or p.point_id != query.point_id
        ]
        cutoffs = heapq.nsmallest(k, ubs)
        cutoff = cutoffs[-1] if len(cutoffs) == k else math.inf
        if not math.isinf(cutoff):
            cutoff += _REL_SLACK * (cutoff + self._index.scale)
        guard = _FAULTS.engaged or _RES.engaged
        budget = _FAULTS.budget if guard else None
        results: list[tuple[NetworkPoint, float]] = []
        source = point_vertex(query.point_id)
        dist: dict = {}
        best: dict = {source: 0.0}
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
        pruned = 0
        while heap and len(results) < k:
            d, vertex = heapq.heappop(heap)
            if vertex in dist:
                continue
            if guard:
                if _FAULTS.engaged:
                    _fault("queries.settle")
                if _RES.engaged:
                    _res_check("queries.settle", partial=results)
                if budget is not None:
                    budget.spend_expansions(1, partial=results)
            dist[vertex] = d
            kind, ident = vertex
            if kind == POINT and (include_query or ident != query.point_id):
                results.append((aug.points.get(ident), d))
                if len(results) == k:
                    break
            for nbr, weight in aug.neighbors(vertex):
                if nbr in dist:
                    continue
                nd = d + weight
                if nd > cutoff:
                    pruned += 1
                    continue
                if nd < best.get(nbr, math.inf):
                    best[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        results.sort(key=_result_order)
        if _OBS.enabled:
            _obs_add("perf.knn.queries")
            _obs_add("perf.knn.vertices_settled", len(dist))
            _obs_add("perf.knn.pruned_pushes", pruned)
        return results

    # ------------------------------------------------------------------
    # k-medoids swap screening
    # ------------------------------------------------------------------
    def screen_swap(
        self,
        points,
        assignment: dict[int, int],
        distance: dict[int, float],
        old_id: int,
        new_medoid: NetworkPoint,
        cand_medoids: list[NetworkPoint],
        current_R: float,
    ) -> bool:
        """True when bounds prove swapping ``old_id -> new_medoid`` cannot
        lower ``R`` — the swap loop may skip its evaluation outright.

        The lower-bounded candidate evaluation: a point keeping its medoid
        contributes ``min(d_p, lb(p, new))`` (its distance can only change
        by moving to the new medoid); a point orphaned by the removal
        contributes ``min over candidate medoids of lb(p, m)``.  Both
        never exceed the point's true candidate distance, so when the sum
        reaches ``current_R`` the true candidate ``R`` does too, and the
        swap would be rejected ("cand_R < R" fails).  Returns early the
        moment the partial sum crosses the threshold (``current_R`` plus
        a float slack that absorbs the bounds' accumulated rounding, so
        the screen never rejects a swap the exact evaluation would have
        accepted by an ulp).
        """
        self._sync()
        if self._index is None:
            return False
        new_vec = self.point_vector(new_medoid)
        cand_vecs = [self.point_vector(m) for m in cand_medoids]
        points = list(points)
        threshold = current_R + _REL_SLACK * (
            current_R + len(points) * self._index.scale
        )
        acc = 0.0
        for p in points:
            pid = p.point_id
            if assignment.get(pid) == old_id:
                pv = self.point_vector(p)
                nearest = math.inf
                for mv in cand_vecs:
                    lb = vector_lower_bound(pv, mv)
                    if lb < nearest:
                        nearest = lb
                        if nearest == 0.0:
                            break
                acc += nearest
            else:
                d_p = distance[pid]
                lb = vector_lower_bound(self.point_vector(p), new_vec)
                acc += d_p if d_p <= lb else lb
            if acc >= threshold:
                return True
        return acc >= threshold

    # ------------------------------------------------------------------
    # eps-Link isolation prefilter
    # ------------------------------------------------------------------
    def isolated_points(self, eps: float) -> frozenset[int]:
        """Objects provably farther than ``eps`` from every other object.

        For each landmark, sort the objects by their coordinate; the gap
        to the nearest coordinate lower-bounds the distance to the
        nearest *reachable* object (unreachable ones are infinitely far
        anyway), so ``max over landmarks of the gap > eps`` proves
        isolation.  An ε-Link expansion from such a seed would return
        just the seed; the sweep can skip it.
        """
        self._sync()
        if self._index is None:
            return frozenset()
        # The float slack makes "farther than eps" strict: a gap within
        # rounding distance of eps does not count as isolation.
        threshold = eps + _REL_SLACK * (eps + self._index.scale)
        vecs = {p.point_id: self.point_vector(p) for p in self._aug.points}
        best_gap = dict.fromkeys(vecs, 0.0)
        for axis in range(len(self._index)):
            finite = sorted(
                (vec[axis], pid)
                for pid, vec in vecs.items()
                if not math.isinf(vec[axis])
            )
            for i, (value, pid) in enumerate(finite):
                gap = math.inf
                if i > 0:
                    gap = value - finite[i - 1][0]
                if i + 1 < len(finite):
                    gap = min(gap, finite[i + 1][0] - value)
                if gap > best_gap[pid]:
                    best_gap[pid] = gap
        isolated = frozenset(
            pid for pid, gap in best_gap.items() if gap > threshold
        )
        if _OBS.enabled and isolated:
            _obs_add("perf.epslink.isolated", len(isolated))
        return isolated
