"""Persistent, integrity-checked landmark indexes (the ``RLIX`` format).

A :class:`~repro.perf.LandmarkIndex` costs one full Dijkstra per landmark
to build — cheap once, wasteful when every serve worker process repeats it
on start *and again on every crash-restart*.  This module makes the index
a durable artifact instead: build once offline (``repro index build``),
then every worker maps the same file read-only, so N processes share one
build and a restarted worker is ready in milliseconds.

On-disk layout (``RLIX``, little-endian, format version 1)::

    offset 0   header (16 bytes)
               <4s H H I I> = magic b"RLIX", format version, flags
               (bit 0 = committed), meta length, CRC32 of bytes [0:12)
    offset 16  meta section: UTF-8 JSON padded with spaces to an 8-byte
               boundary, then an 8-byte trailer <I I> = CRC32, 0
    then       nodes section: num_nodes int64 node ids, ascending,
               then the 8-byte CRC trailer
    then       tables section: num_landmarks x num_nodes float64
               distances (row l = distances from landmark l, ``inf``
               where unreached), then the 8-byte CRC trailer

Every byte of the file is covered by a checksum — the header by its own
CRC, each section (padding included) by its trailer, and a flip inside a
trailer fails the comparison itself — so *any* single-bit corruption is
detected at load time with a typed :class:`~repro.exceptions
.IndexCorruptError`.  The trailer's high word must read zero, which keeps
section payloads 8-byte aligned for zero-copy ``numpy.frombuffer`` views
over the mmap.

The meta JSON binds the artifact to its source data: it records a
:func:`network_fingerprint` (SHA-256 over the sorted node ids and
canonical weighted edges — identical for the in-memory network, the
workload JSON, and the paged :class:`~repro.storage.NetworkStore`, since
all three expose the same traversal protocol), the landmark count, the
selection seed, and the format version.  Loading against a network whose
fingerprint differs raises :class:`~repro.exceptions.IndexStaleError`
instead of silently serving wrong bounds; so does a format-version skew.

Writes are crash-consistent the same way :meth:`NetworkStore.build` is:
everything goes to ``path + ".tmp"``, the header is first written
*uncommitted*, the commit flag is set only after the payload is fsynced,
and the temp file is renamed over the target last.  Loaders refuse
``.tmp`` paths and uncommitted files, and every write passes through the
:mod:`repro.faults` sites in :data:`BUILD_WRITE_SITES` so the standard
crash/torn sweeps apply (``tests/test_index_persist.py``).

Consumers should not let a bad artifact take a worker down:
:func:`load_index_or_degrade` maps every load failure — missing file,
corrupt section, stale fingerprint, version skew — to ``(None, reason)``
and bumps the ``perf.index.degraded`` counter, so callers fall back to
the unaccelerated (still bit-identical) query path.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import math
import mmap
import os
import struct
import zlib

from repro.exceptions import IndexCorruptError, IndexStaleError, ParameterError
from repro.faults.core import CrashPoint, fire as _fault, tear as _tear
from repro.network.points import NetworkPoint
from repro.obs.core import add as _obs_add, span as _span
from repro.perf.landmarks import LandmarkIndex

__all__ = [
    "BUILD_WRITE_SITES",
    "FORMAT_VERSION",
    "PersistedLandmarkIndex",
    "build_index_file",
    "load_index",
    "load_index_or_degrade",
    "network_fingerprint",
    "save_index",
    "verify_index",
]

MAGIC = b"RLIX"
FORMAT_VERSION = 1

#: header = magic, format version, flags (bit 0 = committed), meta length,
#: CRC32 over the preceding 12 bytes.
_HEADER = struct.Struct("<4sHHII")
#: section trailer = CRC32 over the section payload, then a zero word that
#: keeps the next section 8-byte aligned (checked on load).
_TRAILER = struct.Struct("<II")
_FLAG_COMMITTED = 0x1

#: Every site through which build-time bytes reach the disk, in write
#: order — the crash/torn sweep in ``tests/test_index_persist.py``
#: injects at each one.
BUILD_WRITE_SITES = (
    "index.build.header",
    "index.build.meta",
    "index.build.nodes",
    "index.build.tables",
    "index.build.commit_header",
    "index.build.commit",
)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a test/CI dependency
    _np = None


def _require_numpy():
    if _np is None:  # pragma: no cover - numpy is a test/CI dependency
        raise ParameterError(
            "persistent landmark indexes require numpy, which is not "
            "installed"
        )
    return _np


def network_fingerprint(network) -> str:
    """SHA-256 content fingerprint of a network's nodes and weighted edges.

    Backend-independent: computed from the traversal protocol (sorted node
    ids, canonical ``(u, v, weight)`` triples with ``u < v``), so the
    in-memory :class:`~repro.network.SpatialNetwork`, a workload JSON just
    loaded from disk, and the paged :class:`~repro.storage.NetworkStore`
    all fingerprint identically when they hold the same graph.  Weights
    hash as their exact float64 bytes — a one-ULP reweigh changes the
    fingerprint.
    """
    digest = hashlib.sha256()
    for node in sorted(network.nodes()):
        digest.update(struct.pack("<q", node))
    digest.update(b"|edges|")
    for u, v, w in sorted(network.edges()):
        digest.update(struct.pack("<qqd", u, v, w))
    return digest.hexdigest()


def _section(payload: bytes) -> bytes:
    """Payload padded to an 8-byte boundary plus its CRC trailer."""
    pad = (-len(payload)) % 8
    padded = payload + b" " * pad
    return padded + _TRAILER.pack(zlib.crc32(padded), 0)


def _header_bytes(meta_len: int, committed: bool) -> bytes:
    flags = _FLAG_COMMITTED if committed else 0
    prefix = _HEADER.pack(MAGIC, FORMAT_VERSION, flags, meta_len, 0)[:-4]
    return prefix + struct.pack("<I", zlib.crc32(prefix))


def _write_blob(fh, site: str, payload: bytes) -> None:
    """One fault-instrumented physical write (error / crash / torn)."""
    _fault(site)
    torn = _tear(site, len(payload))
    if torn is not None:
        fh.write(payload[:torn])
        fh.flush()
        os.fsync(fh.fileno())
        raise CrashPoint(f"torn write at {site}")
    fh.write(payload)


def save_index(path: str, index, network, *, seed: int = 0) -> dict:
    """Persist a built :class:`LandmarkIndex` atomically as ``RLIX``.

    Everything is written to ``path + ".tmp"`` (uncommitted header first,
    commit flag set only after the payload is fsynced) and renamed over
    ``path`` last, so a crash at any write site leaves either no artifact
    or a fully valid one — never a half-built file at the target path.
    Returns a summary dict (landmarks, nodes, bytes, fingerprint).
    """
    np = _require_numpy()
    if path.endswith(".tmp"):
        raise ParameterError(
            f"refusing to write an index at a temp path: {path}"
        )
    nodes = sorted(network.nodes())
    ids = np.asarray(nodes, dtype=np.int64)
    tables = np.full((len(index), len(nodes)), math.inf, dtype=np.float64)
    # One pass per landmark through the index's own table keeps the exact
    # float64 values (no recomputation, no rounding).
    for row, table in enumerate(index._tables):
        for col, node in enumerate(nodes):
            value = table.get(node)
            if value is not None:
                tables[row, col] = value
    meta = {
        "format": "repro-landmark-index",
        "version": FORMAT_VERSION,
        "fingerprint": network_fingerprint(network),
        "num_landmarks": len(index),
        "num_nodes": len(nodes),
        "landmarks": list(index.landmarks),
        "scale": index.scale,
        "seed": int(seed),
    }
    meta_section = _section(json.dumps(meta, sort_keys=True).encode("utf-8"))
    nodes_section = _section(ids.tobytes())
    tables_section = _section(tables.tobytes())
    meta_len = len(meta_section) - _TRAILER.size
    tmp = path + ".tmp"
    if os.path.exists(tmp):
        # Leftover from a crashed build: stale by construction, replaced.
        os.remove(tmp)
    try:
        with open(tmp, "wb") as fh:
            _write_blob(fh, "index.build.header",
                        _header_bytes(meta_len, committed=False))
            _write_blob(fh, "index.build.meta", meta_section)
            _write_blob(fh, "index.build.nodes", nodes_section)
            _write_blob(fh, "index.build.tables", tables_section)
            fh.flush()
            os.fsync(fh.fileno())
            # Commit point: only after every payload byte is durable does
            # the header flip to committed — a torn tail can never read
            # as a valid index.
            fh.seek(0)
            _write_blob(fh, "index.build.commit_header",
                        _header_bytes(meta_len, committed=True))
            fh.flush()
            os.fsync(fh.fileno())
    except CrashPoint:
        raise  # simulated power loss: leave the temp file exactly as-is
    except BaseException:
        with contextlib.suppress(OSError):
            os.remove(tmp)
        raise
    _fault("index.build.commit")
    os.replace(tmp, path)
    return {
        "path": path,
        "landmarks": len(index),
        "nodes": len(nodes),
        "bytes": _HEADER.size + len(meta_section) + len(nodes_section)
        + len(tables_section),
        "fingerprint": meta["fingerprint"],
    }


def build_index_file(path: str, network, *, num_landmarks: int = 8,
                     seed: int = 0) -> dict:
    """Build a fresh landmark index over ``network`` and persist it."""
    with _span("perf.index.build"):
        index = LandmarkIndex(network, num_landmarks)
        return save_index(path, index, network, seed=seed)


class _Reader:
    """Validated access to one RLIX file's bytes (mmap when possible)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "rb")
        self.size = os.fstat(self._fh.fileno()).st_size
        try:
            self.buf = mmap.mmap(self._fh.fileno(), 0,
                                 access=mmap.ACCESS_READ)
            self._mapped = True
        except (ValueError, OSError):
            # Empty or unmappable file: fall back to a plain read; the
            # size checks below reject anything actually damaged.
            self.buf = self._fh.read()
            self._mapped = False

    def close(self) -> None:
        if self._mapped:
            with contextlib.suppress(BufferError):
                self.buf.close()
        self._fh.close()

    def section(self, offset: int, payload_len: int) -> memoryview:
        """CRC-verified view of the section payload at ``offset``."""
        end = offset + payload_len + _TRAILER.size
        if end > self.size:
            raise IndexCorruptError(
                f"{self.path}: truncated section at offset {offset} "
                f"(need {end} bytes, file has {self.size})"
            )
        view = memoryview(self.buf)
        payload = view[offset:offset + payload_len]
        stored, zero = _TRAILER.unpack_from(self.buf, offset + payload_len)
        if zero != 0:
            raise IndexCorruptError(
                f"{self.path}: section trailer at offset "
                f"{offset + payload_len} has a non-zero pad word"
            )
        if zlib.crc32(payload) != stored:
            raise IndexCorruptError(
                f"{self.path}: section CRC mismatch at offset {offset}"
            )
        return payload


def _read_header(reader: _Reader) -> int:
    """Validate the header; returns the meta section's payload length."""
    if reader.size < _HEADER.size:
        raise IndexCorruptError(
            f"{reader.path}: truncated header "
            f"({reader.size} bytes, need {_HEADER.size})"
        )
    head = bytes(reader.buf[:_HEADER.size])
    magic, version, flags, meta_len, stored = _HEADER.unpack(head)
    if magic != MAGIC:
        raise IndexCorruptError(
            f"{reader.path}: not an RLIX landmark index (magic {magic!r})"
        )
    if zlib.crc32(head[:-4]) != stored:
        raise IndexCorruptError(f"{reader.path}: header CRC mismatch")
    if version != FORMAT_VERSION:
        raise IndexStaleError(
            f"{reader.path}: format version skew — file is v{version}, "
            f"this build reads v{FORMAT_VERSION}; rebuild the index"
        )
    if not flags & _FLAG_COMMITTED:
        raise IndexCorruptError(
            f"{reader.path}: uncommitted index (crashed build?) — "
            "refusing to serve bounds from it"
        )
    return meta_len


def _parse_meta(reader: _Reader, meta_len: int) -> dict:
    payload = reader.section(_HEADER.size, meta_len)
    try:
        meta = json.loads(bytes(payload).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IndexCorruptError(
            f"{reader.path}: meta section does not decode: {exc}"
        ) from None
    try:
        num_landmarks = int(meta["num_landmarks"])
        num_nodes = int(meta["num_nodes"])
        landmarks = [int(x) for x in meta["landmarks"]]
        float(meta["scale"])
        str(meta["fingerprint"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexCorruptError(
            f"{reader.path}: meta section is inconsistent: {exc}"
        ) from None
    if len(landmarks) != num_landmarks or num_landmarks < 0 or num_nodes < 0:
        raise IndexCorruptError(
            f"{reader.path}: meta counts are inconsistent "
            f"({num_landmarks} landmarks, {len(landmarks)} listed)"
        )
    return meta


def _section_layout(meta: dict, meta_len: int) -> tuple[int, int, int, int]:
    """(nodes_off, nodes_len, tables_off, tables_len) from the meta."""
    num_landmarks = int(meta["num_landmarks"])
    num_nodes = int(meta["num_nodes"])
    nodes_off = _HEADER.size + meta_len + _TRAILER.size
    nodes_len = num_nodes * 8
    tables_off = nodes_off + nodes_len + _TRAILER.size
    tables_len = num_landmarks * num_nodes * 8
    return nodes_off, nodes_len, tables_off, tables_len


class PersistedLandmarkIndex:
    """A read-only :class:`LandmarkIndex` view over an ``RLIX`` mmap.

    Implements the exact interface :class:`~repro.perf.DistanceAccelerator`
    consumes — ``landmarks``, ``scale``, ``__len__``, ``node_vector``,
    ``node_lower_bound``, ``point_vector`` — backed by zero-copy numpy
    views over the mapped file, so N worker processes share one set of
    physical pages.  All section CRCs are verified eagerly at load (see
    :func:`load_index`): after construction every read is plain memory.

    Bit-identity: the stored tables are the in-memory index's float64
    values verbatim and the bound arithmetic repeats the in-memory
    expressions on Python floats, so accelerated query results are
    indistinguishable from a freshly built index.
    """

    def __init__(self, reader: _Reader, meta: dict, ids, tables,
                 network) -> None:
        np = _require_numpy()
        self._reader = reader
        self._network = network
        self._ids = ids
        self._dist = tables
        self.path = reader.path
        self.landmarks: list[int] = [int(x) for x in meta["landmarks"]]
        self.scale = float(meta["scale"])
        self.fingerprint: str = meta["fingerprint"]
        self.seed = int(meta.get("seed", 0))
        self._np = np
        # Lazy per-process memo of converted vectors.  The mmap'd tables
        # stay the single shared physical copy; this only caches the
        # Python-float tuples for nodes a query has actually touched, so
        # repeated vector reads cost a dict hit instead of a searchsorted
        # plus eight float conversions.
        self._vec_cache: dict[int, tuple[float, ...]] = {}

    # -- LandmarkIndex interface --------------------------------------
    def __len__(self) -> int:
        return len(self.landmarks)

    def _column(self, node: int) -> int:
        """Column of ``node`` in the tables, or -1 when absent."""
        pos = int(self._np.searchsorted(self._ids, node))
        if pos >= len(self._ids) or int(self._ids[pos]) != node:
            return -1
        return pos

    def node_vector(self, node: int) -> tuple[float, ...]:
        """Landmark coordinate vector of a node (``inf`` where unreached)."""
        vec = self._vec_cache.get(node)
        if vec is not None:
            return vec
        col = self._column(node)
        if col < 0:
            vec = (math.inf,) * len(self.landmarks)
        else:
            vec = tuple(float(x) for x in self._dist[:, col])
        self._vec_cache[node] = vec
        return vec

    def node_lower_bound(self, u: int, v: int) -> float:
        """Admissible lower bound on the node distance ``d(u, v)``."""
        if u == v:
            return 0.0
        best = 0.0
        for du, dv in zip(self.node_vector(u), self.node_vector(v)):
            if math.isinf(du):
                if math.isinf(dv):
                    continue
                return math.inf
            if math.isinf(dv):
                return math.inf
            diff = du - dv if du >= dv else dv - du
            if diff > best:
                best = diff
        return best

    def point_vector(self, point: NetworkPoint) -> tuple[float, ...]:
        """Landmark coordinate vector of an object on an edge (exact)."""
        weight = self._network.edge_weight(point.u, point.v)
        off = point.offset
        rest = weight - off
        return tuple(
            min(du + off, dv + rest)
            for du, dv in zip(
                self.node_vector(point.u), self.node_vector(point.v)
            )
        )

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drop the numpy views and unmap the file."""
        self._vec_cache.clear()
        self._ids = self._np.asarray([], dtype=self._np.int64)
        self._dist = self._np.zeros((len(self.landmarks), 0))
        self._reader.close()


def load_index(path: str, network) -> PersistedLandmarkIndex:
    """Open a persisted index read-only, verifying every byte first.

    Raises
    ------
    IndexCorruptError
        Bad magic, header/section CRC mismatch, truncated tail, non-zero
        trailer padding, undecodable meta, or an uncommitted file — any
        single-bit flip anywhere in the file lands here (or in the stale
        class below when it flips the version field's *valid* encoding).
    IndexStaleError
        The file is valid but does not belong to ``network`` (fingerprint
        mismatch) or was written by a different format version.
    OSError
        The file is missing or unreadable.

    The whole file is checksummed eagerly — the one sequential pass also
    warms the page cache the mmap reads from — so a worker that gets past
    this call can never SIGBUS or serve a wrong bound off a bad page.
    """
    np = _require_numpy()
    if path.endswith(".tmp"):
        raise IndexCorruptError(
            f"{path}: refusing an uncommitted temp index file"
        )
    reader = _Reader(path)
    try:
        meta_len = _read_header(reader)
        meta = _parse_meta(reader, meta_len)
        nodes_off, nodes_len, tables_off, tables_len = _section_layout(
            meta, meta_len
        )
        expected = tables_off + tables_len + _TRAILER.size
        if reader.size != expected:
            raise IndexCorruptError(
                f"{path}: file size {reader.size} does not match the "
                f"declared layout ({expected} bytes)"
            )
        nodes_view = reader.section(nodes_off, nodes_len)
        tables_view = reader.section(tables_off, tables_len)
        fingerprint = network_fingerprint(network)
        if meta["fingerprint"] != fingerprint:
            raise IndexStaleError(
                f"{path}: index fingerprint {meta['fingerprint'][:12]}… "
                f"does not match the served network "
                f"({fingerprint[:12]}…); rebuild with `repro index build`"
            )
        num_nodes = int(meta["num_nodes"])
        ids = np.frombuffer(nodes_view, dtype=np.int64, count=num_nodes)
        if num_nodes > 1 and not bool(np.all(ids[:-1] < ids[1:])):
            raise IndexCorruptError(
                f"{path}: node-id section is not strictly ascending"
            )
        tables = np.frombuffer(
            tables_view, dtype=np.float64,
            count=int(meta["num_landmarks"]) * num_nodes,
        ).reshape(int(meta["num_landmarks"]), num_nodes)
    except BaseException:
        reader.close()
        raise
    return PersistedLandmarkIndex(reader, meta, ids, tables, network)


def load_index_or_degrade(path: str, network):
    """(index, None) on success; (None, reason) on *any* load failure.

    The graceful-degradation seam for the serve tier: a missing, corrupt,
    stale, or version-skewed artifact must cost a worker its acceleration,
    never its life.  Every failure bumps the ``perf.index.degraded``
    counter and is summarised in ``reason``; successes bump
    ``perf.index.loaded``.
    """
    try:
        index = load_index(path, network)
    except (OSError, ParameterError, IndexCorruptError,
            IndexStaleError) as exc:
        _obs_add("perf.index.degraded")
        return None, f"{type(exc).__name__}: {exc}"
    _obs_add("perf.index.loaded")
    return index, None


def verify_index(path: str, network=None) -> list:
    """Offline verification for ``repro check --index`` / ``repro index
    check``: returns :class:`~repro.storage.verify.Finding` objects
    instead of raising, so one pass reports all detectable damage.

    Checks the header (magic, CRC, version, commit flag), the declared
    layout against the physical file size, every section CRC, the meta
    structure, and — when a ``network`` is supplied — the content
    fingerprint.  Read-only.
    """
    from repro.storage.verify import Finding

    findings: list = []
    if not os.path.exists(path):
        return [Finding("error", "index", f"index file missing: {path}")]
    if path.endswith(".tmp"):
        findings.append(Finding(
            "warning", "index",
            "examining an uncommitted temp index file",
        ))
    try:
        reader = _Reader(path)
    except OSError as exc:
        return [Finding("error", "index", f"cannot open index: {exc}")]
    try:
        try:
            meta_len = _read_header(reader)
        except (IndexCorruptError, IndexStaleError) as exc:
            findings.append(Finding("error", "index", str(exc), offset=0))
            return findings
        try:
            meta = _parse_meta(reader, meta_len)
        except IndexCorruptError as exc:
            findings.append(Finding(
                "error", "index", str(exc), offset=_HEADER.size
            ))
            return findings
        nodes_off, nodes_len, tables_off, tables_len = _section_layout(
            meta, meta_len
        )
        expected = tables_off + tables_len + _TRAILER.size
        if reader.size != expected:
            findings.append(Finding(
                "error", "index",
                f"file size {reader.size} does not match the declared "
                f"layout ({expected} bytes)",
            ))
        for name, off, length in (
            ("nodes", nodes_off, nodes_len),
            ("tables", tables_off, tables_len),
        ):
            try:
                reader.section(off, length)
            except IndexCorruptError as exc:
                findings.append(Finding(
                    "error", "index", f"{name} section: {exc}", offset=off
                ))
        if network is not None:
            fingerprint = network_fingerprint(network)
            if meta["fingerprint"] != fingerprint:
                findings.append(Finding(
                    "error", "index",
                    f"stale index: fingerprint "
                    f"{meta['fingerprint'][:12]}… does not match the "
                    f"network ({fingerprint[:12]}…)",
                ))
    finally:
        reader.close()
    return findings
