"""One process's live, mutable view of a served workload.

A :class:`LiveSession` owns the mutable world the serve tier answers
queries from: the network, the served :class:`PointSet`, and an
:class:`~repro.core.incremental.IncrementalEpsLink` that maintains the
clustering under mutations.  It ties the durability and staleness pieces
together:

* :meth:`mutate` — validate, conflict-check, append to the write-ahead
  log (the fsync inside :meth:`WriteAheadLog.append` is the
  acknowledgement point), then apply.  A mutation that fails validation
  or conflicts is *never logged*; a crash after the append is recovered
  by replay.
* :meth:`apply` — idempotent, gap-checked application of one sequenced
  mutation; used by the live path, by WAL replay, and by the apply
  frames a supervisor broadcasts to worker processes.  Each apply
  advances :attr:`epoch` to the mutation's sequence number and
  invalidates exactly the affected region of every attached view /
  accelerator (:meth:`attach`), never more — except for reweighs, which
  change distances globally and additionally fire the registered
  reweigh hooks so index-backed consumers can re-run their
  fingerprint check (``load_index_or_degrade``) and degrade.
* :meth:`snapshot` — the current epoch and full cluster assignment, in a
  canonical shape that is bit-comparable across processes: a supervisor,
  each of its workers, and a single-threaded oracle applying the same
  mutation sequence all produce identical documents.
* :meth:`wait_for_epoch` — the blocking half of the ``subscribe_epoch``
  wire op.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

from repro.core.incremental import IncrementalEpsLink
from repro.exceptions import (
    Cancelled,
    DeadlineExceeded,
    MutationConflict,
    ParameterError,
    ReplayError,
)
from repro.faults.core import fire as _fault
from repro.live.mutate import check_conflict, validate_mutation
from repro.obs.core import add as _obs_add

__all__ = ["LiveSession"]


class LiveSession:
    """Durable, incrementally clustered mutation state for one process.

    Parameters
    ----------
    network / points:
        The served world.  ``points`` is *adopted* — queries and the
        incremental clustering run against the same live objects.
    eps / min_sup:
        Clustering parameters for the maintained ε-Link result.
    wal:
        An open :class:`~repro.live.WriteAheadLog`, or ``None`` for an
        apply-only session (worker processes receiving broadcast frames
        after their initial replay, and unit tests).  Sessions holding a
        read-only log can replay but not mutate.

    Thread safety: every public method takes :attr:`lock` (an RLock);
    callers that need multi-step atomicity (e.g. a supervisor appending
    and broadcasting in epoch order) may hold it across calls.
    """

    def __init__(self, network, points=None, *, eps: float = 1.0,
                 min_sup: int = 1, wal=None) -> None:
        self.network = network
        self.live = IncrementalEpsLink(
            network, eps, min_sup=min_sup, points=points
        )
        self.points = self.live.points
        self.wal = wal
        self.epoch = 0
        self.lock = threading.RLock()
        self._cond = threading.Condition(self.lock)
        self._attachments: list[SimpleNamespace] = []
        self._reweigh_hooks: list = []
        self._shutdown = False
        #: Canonical form of the most recently applied mutation (what a
        #: supervisor broadcasts to its workers).
        self.last_mutation: dict | None = None

    # -- staleness wiring ----------------------------------------------
    def attach(self, aug, accel=None) -> SimpleNamespace:
        """Register a view (and optionally its accelerator) for precise
        invalidation on every apply.

        Returns the mutable attachment record; callers that rebuild their
        accelerator later (e.g. after an index degrade) update its
        ``accel`` attribute in place.
        """
        record = SimpleNamespace(aug=aug, accel=accel)
        with self.lock:
            self._attachments.append(record)
        return record

    def add_reweigh_hook(self, hook) -> None:
        """Register ``hook(u, v)`` to run after every applied reweigh.

        This is where index-backed serve tiers re-run their network
        fingerprint check (:func:`repro.perf.load_index_or_degrade`) and
        degrade — never silently rebuild — because the landmark node
        tables bind to edge weights.
        """
        with self.lock:
            self._reweigh_hooks.append(hook)

    # -- mutation path -------------------------------------------------
    def check(self, mutation) -> dict:
        """Validate shape and conflicts; returns the canonical mutation."""
        with self.lock:
            canonical = validate_mutation(mutation)
            try:
                check_conflict(canonical, self.network, self.points)
            except MutationConflict:
                _obs_add("live.conflicts")
                raise
            return canonical

    def mutate(self, mutation) -> dict:
        """Durably log and apply one mutation; returns the ack document.

        The returned ``{"epoch": seq, ...}`` is only produced after the
        WAL fsync — the durability acknowledgement point.  Conflicting or
        malformed mutations raise before anything reaches the log.
        """
        with self.lock:
            canonical = self.check(mutation)
            if self.wal is not None:
                if self.wal.read_only:
                    raise ParameterError(
                        "this session's mutation log is read-only"
                    )
                seq = self.wal.append(canonical)
            else:
                seq = self.epoch + 1
            _obs_add("live.mutations")
            return self.apply(seq, canonical)

    def apply(self, seq: int, mutation: dict, *,
              replaying: bool = False) -> dict:
        """Apply one sequenced mutation; idempotent and gap-checked.

        ``seq <= epoch`` is a no-op ack (the mutation is already in the
        state — the replay-after-kill path); ``seq > epoch + 1`` is a
        :class:`ReplayError` (a record was lost or delivered out of
        order).  The ``live.apply`` fault site fires on live applies
        (not replays), *after* the idempotency check and *before* any
        state changes — a kill here loses only in-memory state that the
        durable log rebuilds.
        """
        with self.lock:
            if seq <= self.epoch:
                return {"epoch": self.epoch, "applied": False}
            if seq != self.epoch + 1:
                raise ReplayError(
                    f"mutation sequence gap: applying {seq} at epoch "
                    f"{self.epoch}"
                )
            if not replaying:
                _fault("live.apply")
            kind = mutation["kind"]
            ack: dict = {"epoch": seq, "applied": True, "kind": kind}
            if kind == "insert_point":
                point = self.live.insert(
                    mutation["u"], mutation["v"], mutation["offset"],
                    point_id=mutation.get("point_id"),
                    label=mutation.get("label"),
                )
                ack["point_id"] = point.point_id
            elif kind == "remove_point":
                self.live.remove(mutation["point_id"])
                ack["point_id"] = mutation["point_id"]
            else:
                self.live.reweigh(
                    mutation["u"], mutation["v"], mutation["weight"]
                )
                ack.update(
                    u=mutation["u"], v=mutation["v"],
                    weight=mutation["weight"],
                )
            self.epoch = seq
            self.last_mutation = dict(mutation)
            reweigh = kind == "reweigh_edge"
            affected = self.live.last_affected
            for record in self._attachments:
                record.aug.refresh()
                if record.accel is not None:
                    record.accel.note_mutation(affected, reweigh=reweigh)
            if reweigh:
                for hook in self._reweigh_hooks:
                    hook(mutation["u"], mutation["v"])
            _obs_add("live.applied")
            self._cond.notify_all()
            return ack

    def replay_wal(self, to_seq: int | None = None) -> int:
        """Apply every logged mutation past the current epoch.

        Returns the number of records applied.  Raises
        :class:`ReplayError` when ``to_seq`` demands an epoch the log
        cannot reach — a worker told to match the pool's epoch must not
        report ready from a stale world.
        """
        if self.wal is None:
            raise ParameterError("session has no mutation log to replay")
        with self.lock:
            delivered = self.wal.replay(
                self._apply_replayed, from_seq=self.epoch, to_seq=to_seq
            )
            if to_seq is not None and self.epoch < to_seq:
                raise ReplayError(
                    f"mutation log ends at sequence {self.wal.last_seq}, "
                    f"cannot reach required epoch {to_seq}"
                )
            return delivered

    def _apply_replayed(self, seq: int, mutation: dict) -> None:
        self.apply(seq, mutation, replaying=True)

    # -- read side -------------------------------------------------------
    def snapshot(self) -> dict:
        """Epoch + full cluster assignment, bit-comparable across
        processes that applied the same mutation sequence."""
        with self.lock:
            result = self.live.result()
            assignment = {
                str(pid): int(label)
                for pid, label in sorted(result.assignment.items())
            }
            return {
                "epoch": self.epoch,
                "num_points": len(self.points),
                "num_clusters": len(set(assignment.values())),
                "assignment": assignment,
            }

    def mutations_since(self, epoch: int) -> list:
        """``(seq, mutation)`` pairs a lagging consumer needs to catch up."""
        if self.wal is None:
            return []
        with self.lock:
            return list(self.wal.records(epoch))

    def wait_for_epoch(self, from_epoch: int,
                       timeout_s: float | None = None) -> dict:
        """Block until :attr:`epoch` exceeds ``from_epoch``.

        Returns ``{"epoch": current, "changed": bool}``; raises
        :class:`~repro.exceptions.DeadlineExceeded` when ``timeout_s``
        elapses first and :class:`~repro.exceptions.Cancelled` when the
        session shuts down while waiting.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        checks = 0
        with self._cond:
            while self.epoch <= from_epoch:
                if self._shutdown:
                    raise Cancelled("session shutdown", site="live.subscribe")
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            "live.subscribe", timeout_s,
                            timeout_s - remaining, checks=checks,
                        )
                checks += 1
                self._cond.wait(
                    0.05 if remaining is None else min(remaining, 0.05)
                )
            return {"epoch": self.epoch, "changed": True}

    def stats(self) -> dict:
        """The ``epoch`` / WAL-health sub-document for stats surfaces."""
        with self.lock:
            doc: dict = {"epoch": self.epoch}
            if self.wal is not None:
                doc["wal"] = {
                    "path": self.wal.path,
                    "last_seq": self.wal.last_seq,
                    "appended": self.wal.appended,
                    "replayed": self.wal.replayed,
                    "last_fsync_s": self.wal.last_fsync_s,
                }
            return doc

    def shutdown(self) -> None:
        """Wake every epoch waiter with :class:`Cancelled`; idempotent."""
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()

    def close(self) -> None:
        self.shutdown()
        if self.wal is not None:
            self.wal.close()
