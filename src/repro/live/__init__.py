"""Durable live mutations for the serve tier (:mod:`repro.live`).

The pieces, bottom-up:

* :class:`WriteAheadLog` — the append-only, CRC-trailed ``RWAL`` mutation
  log; every append is fsynced before its sequence number (the
  acknowledgement) is returned, and opening truncates a torn tail back to
  exactly the acknowledged prefix.
* :func:`validate_mutation` / :func:`check_conflict` — the typed mutation
  schema (``insert_point`` / ``remove_point`` / ``reweigh_edge``) and its
  conflict rules, applied *before* anything reaches the log.
* :class:`LiveSession` — one process's mutable world: WAL-backed
  mutation, idempotent sequenced apply, crash-consistent replay,
  incremental ε-Link maintenance, precise cache invalidation, and the
  epoch/snapshot read side that ``mutate`` / ``subscribe_epoch`` /
  ``snapshot`` wire ops are built on.
"""

from repro.live.mutate import (
    MUTATION_KINDS,
    check_conflict,
    validate_mutation,
)
from repro.live.session import LiveSession
from repro.live.wal import (
    APPEND_WRITE_SITES,
    REPLAY_SITES,
    WriteAheadLog,
    verify_wal,
)

__all__ = [
    "APPEND_WRITE_SITES",
    "LiveSession",
    "MUTATION_KINDS",
    "REPLAY_SITES",
    "WriteAheadLog",
    "check_conflict",
    "validate_mutation",
    "verify_wal",
]
