"""Durable write-ahead mutation log (the ``RWAL`` format).

The serve tier's live-mutation subsystem must never lose an acknowledged
mutation and never resurrect an unacknowledged one.  This module provides
the durability half of that contract: an append-only, CRC-trailed log in
the house style of ``RPCK``/``RLIX``, where every mutation is written and
fsynced *before* the caller acknowledges it to the client.

On-disk layout (``RWAL``, little-endian, format version 1)::

    offset 0   header (16 bytes)
               <4s H H I I> = magic b"RWAL", format version, flags
               (bit 0 = committed), meta length, CRC32 of bytes [0:12)
    offset 16  meta section: UTF-8 JSON padded with spaces to an 8-byte
               boundary, then an 8-byte trailer <I I> = CRC32, 0
    then       records, each 8-byte aligned:
               <Q I I I I> = sequence number (1, 2, 3, ...), payload
               length (unpadded), CRC32 of the *padded* payload, a zero
               word (checked), CRC32 of the preceding 20 bytes; then the
               payload — canonical JSON of one mutation — padded with
               spaces to an 8-byte boundary.

Recovery semantics follow from the append discipline.  Each ``append``
performs exactly one fault-instrumented physical write followed by an
fsync, and only then returns the sequence number that the serve tier
acknowledges, so after a crash:

* damage coinciding with the physical **tail** (short record header, a
  header-CRC mismatch on a header that is itself the end of file, payload
  past EOF, payload-CRC mismatch on the final record) is the torn residue
  of an unacknowledged append — ``open`` truncates it away and the log
  reads exactly the acknowledged prefix;
* damage **before** the tail can only be bit rot or external modification
  — never a torn write — and raises a typed
  :class:`~repro.exceptions.WalCorruptError`, as does a sequence-number
  discontinuity.

Creation writes the header uncommitted, fsyncs the meta section, then
flips the commit flag and fsyncs again; an uncommitted header on open is
the residue of a crashed creation (nothing was ever acknowledged) and the
log is recreated in place.  A foreign magic always refuses.

Every write passes through the :mod:`repro.faults` sites in
:data:`APPEND_WRITE_SITES`, and replay fires ``wal.replay.record`` before
handing each record to the apply callback, so the standard crash / torn /
kill sweeps in ``tests/test_wal.py`` and ``tests/test_live_chaos.py``
cover every byte that reaches the disk and every record that leaves it.
"""

from __future__ import annotations

import contextlib
import json
import os
import struct
import time
import zlib

from repro.exceptions import ParameterError, WalCorruptError
from repro.faults.core import CrashPoint, fire as _fault, tear as _tear
from repro.obs.core import add as _obs_add
from repro.obs.metrics import REGISTRY as _METRICS

__all__ = [
    "APPEND_WRITE_SITES",
    "FORMAT_VERSION",
    "REPLAY_SITES",
    "WriteAheadLog",
    "verify_wal",
]

MAGIC = b"RWAL"
FORMAT_VERSION = 1

#: header = magic, format version, flags (bit 0 = committed), meta length,
#: CRC32 over the preceding 12 bytes (identical shape to RLIX/RPCK).
_HEADER = struct.Struct("<4sHHII")
#: section trailer = CRC32 over the padded payload, then a zero word that
#: keeps the next section 8-byte aligned (checked on load).
_TRAILER = struct.Struct("<II")
#: record prefix = sequence number, unpadded payload length, CRC32 of the
#: padded payload, a zero word, CRC32 of the preceding 20 bytes.
_RECORD = struct.Struct("<QIIII")
_FLAG_COMMITTED = 0x1

#: Every site through which WAL bytes reach the disk, in write order —
#: the crash/torn durability sweep in ``tests/test_wal.py`` injects at
#: each one and asserts that reopening recovers exactly the acknowledged
#: prefix.
APPEND_WRITE_SITES = (
    "wal.append.header",
    "wal.append.meta",
    "wal.append.commit_header",
    "wal.append.record",
)

#: Replay-side sites: ``wal.replay.truncate`` guards the torn-tail
#: truncation write, ``wal.replay.record`` fires before each record is
#: handed to the apply callback (the kill-mid-replay lever).
REPLAY_SITES = (
    "wal.replay.truncate",
    "wal.replay.record",
)


def _canonical_payload(mutation: dict) -> bytes:
    """Canonical JSON bytes of one mutation (stable across processes)."""
    return json.dumps(
        mutation, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _record_bytes(seq: int, payload: bytes) -> bytes:
    padded = payload + b" " * ((-len(payload)) % 8)
    prefix = _RECORD.pack(seq, len(payload), zlib.crc32(padded), 0, 0)[:-4]
    return prefix + struct.pack("<I", zlib.crc32(prefix)) + padded


def _section(payload: bytes) -> bytes:
    """Payload padded to an 8-byte boundary plus its CRC trailer."""
    pad = (-len(payload)) % 8
    padded = payload + b" " * pad
    return padded + _TRAILER.pack(zlib.crc32(padded), 0)


def _header_bytes(meta_len: int, committed: bool) -> bytes:
    flags = _FLAG_COMMITTED if committed else 0
    prefix = _HEADER.pack(MAGIC, FORMAT_VERSION, flags, meta_len, 0)[:-4]
    return prefix + struct.pack("<I", zlib.crc32(prefix))


def _write_blob(fh, site: str, payload: bytes) -> None:
    """One fault-instrumented physical write (error / crash / torn)."""
    _fault(site)
    torn = _tear(site, len(payload))
    if torn is not None:
        fh.write(payload[:torn])
        fh.flush()
        os.fsync(fh.fileno())
        raise CrashPoint(f"torn write at {site}")
    fh.write(payload)


class _Scan:
    """Result of scanning a log's record region."""

    __slots__ = ("records", "valid_end", "error")

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.valid_end = 0
        self.error: str | None = None


def _scan_records(buf: bytes, path: str, records_off: int) -> _Scan:
    """Walk the record region; stop at a torn tail, raise on mid-log rot.

    A record is *torn* (recoverable) only when the damage coincides with
    the physical end of file — anything wrong with more bytes following it
    is corruption, because fsync-before-ack means no later record can ever
    have been written after a torn one.
    """
    scan = _Scan()
    scan.valid_end = records_off
    size = len(buf)
    offset = records_off
    expect_seq = 1
    while offset < size:
        if size - offset < _RECORD.size:
            scan.error = (
                f"short record header at offset {offset} "
                f"({size - offset} bytes)"
            )
            return scan
        head = buf[offset:offset + _RECORD.size]
        seq, payload_len, payload_crc, zero, stored = _RECORD.unpack(head)
        if zlib.crc32(head[:-4]) != stored or zero != 0:
            if offset + _RECORD.size == size:
                scan.error = (
                    f"record header CRC mismatch at end of file "
                    f"(offset {offset})"
                )
                return scan
            # A torn append writes a prefix of correct bytes, so it can
            # only leave a short header or a valid header with a torn
            # payload — never a complete-but-wrong header with bytes
            # after it.
            raise WalCorruptError(
                f"{path}: record header CRC mismatch at offset {offset} "
                f"with {size - offset - _RECORD.size} bytes following — "
                "mid-log corruption, not a torn tail"
            )
        padded_len = payload_len + ((-payload_len) % 8)
        end = offset + _RECORD.size + padded_len
        if end > size:
            scan.error = (
                f"record {seq} payload extends past end of file "
                f"(offset {offset})"
            )
            return scan
        padded = buf[offset + _RECORD.size:end]
        if zlib.crc32(padded) != payload_crc:
            if end == size:
                scan.error = (
                    f"record {seq} payload CRC mismatch at end of file "
                    f"(offset {offset})"
                )
                return scan
            # Bytes follow the damaged record, so it was once complete
            # and fsynced: this is rot, not a torn append.
            raise WalCorruptError(
                f"{path}: record {seq} payload CRC mismatch at offset "
                f"{offset} with {size - end} bytes following — "
                "mid-log corruption, not a torn tail"
            )
        if seq != expect_seq:
            raise WalCorruptError(
                f"{path}: sequence discontinuity at offset {offset} "
                f"(found record {seq}, expected {expect_seq})"
            )
        try:
            doc = json.loads(padded[:payload_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WalCorruptError(
                f"{path}: record {seq} payload does not decode: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise WalCorruptError(
                f"{path}: record {seq} payload is not an object"
            )
        scan.records.append(doc)
        scan.valid_end = end
        offset = end
        expect_seq += 1
    return scan


def _read_header(buf: bytes, path: str) -> tuple[int, bool]:
    """(meta_len, committed) — raises WalCorruptError on foreign/bad data.

    An *uncommitted-but-intact* header is reported via ``committed=False``
    rather than raised, so read-write opens can recreate the crashed log.
    """
    if len(buf) < _HEADER.size:
        if len(buf) >= 4 and buf[:4] != MAGIC:
            raise WalCorruptError(
                f"{path}: not an RWAL mutation log (magic {buf[:4]!r})"
            )
        return -1, False
    head = bytes(buf[:_HEADER.size])
    magic, version, flags, meta_len, stored = _HEADER.unpack(head)
    if magic != MAGIC:
        raise WalCorruptError(
            f"{path}: not an RWAL mutation log (magic {magic!r})"
        )
    if zlib.crc32(head[:-4]) != stored:
        return -1, False
    if version != FORMAT_VERSION:
        raise WalCorruptError(
            f"{path}: format version skew — file is v{version}, this "
            f"build reads v{FORMAT_VERSION}"
        )
    return meta_len, bool(flags & _FLAG_COMMITTED)


class WriteAheadLog:
    """Append-only durable mutation log with crash-consistent open.

    Opening read-write scans the whole file, truncates any torn tail, and
    leaves the log positioned for appends; every :meth:`append` is fsynced
    before its sequence number is returned, which is the acknowledgement
    point for the serve tier.  Opening ``read_only=True`` (worker
    processes sharing the supervisor's log) serves the valid prefix and
    never writes — a torn tail is simply ignored.

    Attributes
    ----------
    last_seq:
        Sequence number of the newest durable record (0 when empty).
    appended / replayed:
        Process-local operation counters, mirrored to the ``wal.*``
        metrics namespace.
    last_fsync_s:
        Duration of the most recent append's fsync, for stats surfaces.
    """

    def __init__(self, path: str, *, read_only: bool = False) -> None:
        if path.endswith(".tmp"):
            raise ParameterError(
                f"refusing to open a mutation log at a temp path: {path}"
            )
        self.path = path
        self.read_only = read_only
        self.appended = 0
        self.replayed = 0
        self.last_fsync_s = 0.0
        self._records: list[dict] = []
        self._fh = None
        self._closed = False
        exists = os.path.exists(path)
        if not exists:
            if read_only:
                raise OSError(f"mutation log missing: {path}")
            self._create()
            return
        with open(path, "rb") as fh:
            buf = fh.read()
        meta_len, committed = _read_header(buf, path)
        if meta_len < 0 or not committed:
            # Crashed creation: nothing was ever acknowledged from this
            # file, so a fresh log is the correct recovery.
            if read_only:
                raise WalCorruptError(
                    f"{path}: uncommitted mutation log (crashed creation?)"
                )
            self._create()
            return
        records_off = self._check_meta(buf, meta_len)
        scan = _scan_records(buf, path, records_off)
        self._records = scan.records
        if read_only:
            return
        self._fh = open(path, "r+b")
        if scan.error is not None:
            # Torn tail: the residue of an unacknowledged append.
            _obs_add("wal.truncated")
            _fault("wal.replay.truncate")
            self._fh.truncate(scan.valid_end)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        self._fh.seek(0, os.SEEK_END)

    def _check_meta(self, buf: bytes, meta_len: int) -> int:
        """Validate the meta section; returns the record-region offset."""
        pad = (-meta_len) % 8
        records_off = _HEADER.size + meta_len + pad + _TRAILER.size
        if records_off > len(buf):
            raise WalCorruptError(
                f"{self.path}: truncated meta section "
                f"(need {records_off} bytes, file has {len(buf)})"
            )
        padded = buf[_HEADER.size:_HEADER.size + meta_len + pad]
        stored, zero = _TRAILER.unpack_from(buf, _HEADER.size + meta_len + pad)
        if zero != 0 or zlib.crc32(padded) != stored:
            # The meta section was fsynced before the commit flag flipped,
            # so a committed header with a bad meta is rot, not a crash.
            raise WalCorruptError(
                f"{self.path}: meta section CRC mismatch"
            )
        try:
            meta = json.loads(padded[:meta_len].decode("utf-8"))
            str(meta["format"])
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError) as exc:
            raise WalCorruptError(
                f"{self.path}: meta section does not decode: {exc}"
            ) from None
        return records_off

    def _create(self) -> None:
        meta = {"format": "repro-mutation-wal", "version": FORMAT_VERSION}
        meta_payload = json.dumps(meta, sort_keys=True).encode("utf-8")
        meta_section = _section(meta_payload)
        fh = open(self.path, "w+b")
        try:
            _write_blob(fh, "wal.append.header",
                        _header_bytes(len(meta_payload), committed=False))
            _write_blob(fh, "wal.append.meta", meta_section)
            fh.flush()
            os.fsync(fh.fileno())
            # Commit point: the header flips only after the meta is
            # durable.  No rename dance is needed — an empty committed
            # log is valid, and nothing is acknowledged before this.
            fh.seek(0)
            _write_blob(fh, "wal.append.commit_header",
                        _header_bytes(len(meta_payload), committed=True))
            fh.flush()
            os.fsync(fh.fileno())
        except BaseException:
            with contextlib.suppress(OSError):
                fh.close()
            raise
        fh.seek(0, os.SEEK_END)
        self._fh = fh

    # -- append / read -------------------------------------------------
    @property
    def last_seq(self) -> int:
        return len(self._records)

    def append(self, mutation: dict) -> int:
        """Durably log one mutation; returns its sequence number.

        The record is written in a single fault-instrumented write and
        fsynced before this method returns — there is no code path on
        which a caller holds a sequence number whose record is not on
        disk, and no path on which a record survives a crash without its
        sequence number having been handed out *unless* it is the torn
        tail that the next open truncates.
        """
        if self.read_only or self._fh is None:
            raise ParameterError(
                f"mutation log {self.path} is open read-only"
            )
        seq = self.last_seq + 1
        blob = _record_bytes(seq, _canonical_payload(mutation))
        _write_blob(self._fh, "wal.append.record", blob)
        self._fh.flush()
        started = time.perf_counter()
        os.fsync(self._fh.fileno())
        self.last_fsync_s = time.perf_counter() - started
        self._records.append(dict(mutation))
        self.appended += 1
        _obs_add("wal.appended")
        _METRICS.histogram("wal.fsync_latency").observe(self.last_fsync_s)
        return seq

    def records(self, from_seq: int = 0):
        """Yield ``(seq, mutation)`` for every record with seq > from_seq."""
        for index in range(max(from_seq, 0), len(self._records)):
            yield index + 1, dict(self._records[index])

    def replay(self, apply, from_seq: int = 0, to_seq: int | None = None):
        """Hand each logged mutation after ``from_seq`` to ``apply``.

        ``apply(seq, mutation)`` is invoked in sequence order; the
        ``wal.replay.record`` fault site fires before each call, so kill
        and crash faults land *between* durably-logged records — replay
        after such a death is idempotent because the applier skips
        sequence numbers at or below its epoch.  Returns the number of
        records delivered.
        """
        last = self.last_seq if to_seq is None else min(to_seq, self.last_seq)
        delivered = 0
        for seq, mutation in self.records(from_seq):
            if seq > last:
                break
            _fault("wal.replay.record")
            apply(seq, mutation)
            delivered += 1
            self.replayed += 1
            _obs_add("wal.replayed")
        return delivered

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            with contextlib.suppress(OSError):
                self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def verify_wal(path: str) -> list:
    """Offline verification for ``repro wal verify``: returns
    :class:`~repro.storage.verify.Finding` objects instead of raising, so
    one pass reports all detectable damage.  Read-only.

    A torn tail is reported as a *warning* (it is recoverable — the next
    read-write open truncates it); mid-log corruption, header damage, and
    sequence discontinuities are errors.
    """
    from repro.storage.verify import Finding

    findings: list = []
    if not os.path.exists(path):
        return [Finding("error", "wal", f"mutation log missing: {path}")]
    try:
        with open(path, "rb") as fh:
            buf = fh.read()
    except OSError as exc:
        return [Finding("error", "wal", f"cannot open mutation log: {exc}")]
    try:
        meta_len, committed = _read_header(buf, path)
    except WalCorruptError as exc:
        return [Finding("error", "wal", str(exc), offset=0)]
    if meta_len < 0:
        return [Finding(
            "error", "wal",
            "damaged header (crashed creation?) — a read-write open "
            "would recreate the log",
            offset=0,
        )]
    if not committed:
        return [Finding(
            "warning", "wal",
            "uncommitted mutation log (crashed creation) — a read-write "
            "open recreates it; nothing was ever acknowledged",
            offset=0,
        )]
    probe = WriteAheadLog.__new__(WriteAheadLog)
    probe.path = path
    try:
        records_off = probe._check_meta(buf, meta_len)
    except WalCorruptError as exc:
        return [Finding("error", "wal", str(exc), offset=_HEADER.size)]
    try:
        scan = _scan_records(buf, path, records_off)
    except WalCorruptError as exc:
        findings.append(Finding("error", "wal", str(exc)))
        return findings
    if scan.error is not None:
        findings.append(Finding(
            "warning", "wal",
            f"torn tail: {scan.error} — {len(buf) - scan.valid_end} "
            "trailing byte(s) will be truncated on the next read-write "
            "open",
            offset=scan.valid_end,
        ))
    return findings
