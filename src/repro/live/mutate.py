"""Typed live mutations: validation and conflict detection.

Three mutation kinds cover the moving-object scenario from the
trajectory-clustering literature — objects appear, disappear, and edge
traversal costs shift under traffic:

``insert_point``
    ``{"kind": "insert_point", "u": int, "v": int, "offset": float,
    "point_id": int?, "label": str?}`` — place an object ``offset`` along
    edge ``(u, v)``.  Omitting ``point_id`` lets the point set assign the
    next free id deterministically, so WAL replay reproduces the same id
    the original apply acknowledged.

``remove_point``
    ``{"kind": "remove_point", "point_id": int}``

``reweigh_edge``
    ``{"kind": "reweigh_edge", "u": int, "v": int, "weight": float}`` —
    replace the edge's traversal cost; objects on the edge keep their
    *relative* position (offsets rescale by ``new/old``).

:func:`validate_mutation` checks shape and value ranges only — it needs
no network and is what the wire layer calls before anything is logged.
:func:`check_conflict` compares a shape-valid mutation against the served
world and raises :class:`~repro.exceptions.MutationConflict` when the
mutation references state that does not exist (or an id that already
does).  Conflicts are detected *before* the WAL append, so a doomed
mutation is never logged and replay can apply every record
unconditionally.
"""

from __future__ import annotations

import math

from repro.exceptions import (
    MutationConflict,
    ParameterError,
    PointNotFoundError,
)

__all__ = [
    "MUTATION_KINDS",
    "check_conflict",
    "validate_mutation",
]

#: Every mutation kind the live tier accepts, in wire-schema order.
MUTATION_KINDS = ("insert_point", "remove_point", "reweigh_edge")


def _require_int(doc: dict, key: str, kind: str) -> int:
    value = doc.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ParameterError(
            f"{kind} mutation field {key!r} must be an integer, "
            f"got {value!r}"
        )
    return value


def _require_number(doc: dict, key: str, kind: str) -> float:
    value = doc.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ParameterError(
            f"{kind} mutation field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def validate_mutation(doc) -> dict:
    """Shape-check one mutation document; returns its canonical form.

    Raises :class:`~repro.exceptions.ParameterError` on any structural
    problem: unknown kind, missing or mistyped fields, non-positive or
    non-finite weights, negative offsets.  The returned dict contains
    exactly the recognised fields — unknown keys are dropped so the WAL
    never records junk the applier would ignore.
    """
    if not isinstance(doc, dict):
        raise ParameterError(
            f"mutation must be an object, got {type(doc).__name__}"
        )
    kind = doc.get("kind")
    if kind not in MUTATION_KINDS:
        raise ParameterError(
            f"unknown mutation kind {kind!r} "
            f"(expected one of {', '.join(MUTATION_KINDS)})"
        )
    if kind == "insert_point":
        out = {
            "kind": kind,
            "u": _require_int(doc, "u", kind),
            "v": _require_int(doc, "v", kind),
            "offset": _require_number(doc, "offset", kind),
        }
        if not math.isfinite(out["offset"]) or out["offset"] < 0.0:
            raise ParameterError(
                f"insert_point offset must be finite and >= 0, "
                f"got {out['offset']!r}"
            )
        if doc.get("point_id") is not None:
            out["point_id"] = _require_int(doc, "point_id", kind)
        if doc.get("label") is not None:
            label = doc["label"]
            if not isinstance(label, str):
                raise ParameterError(
                    f"insert_point label must be a string, got {label!r}"
                )
            out["label"] = label
        return out
    if kind == "remove_point":
        return {"kind": kind, "point_id": _require_int(doc, "point_id", kind)}
    out = {
        "kind": kind,
        "u": _require_int(doc, "u", kind),
        "v": _require_int(doc, "v", kind),
        "weight": _require_number(doc, "weight", kind),
    }
    if not math.isfinite(out["weight"]) or out["weight"] <= 0.0:
        raise ParameterError(
            f"reweigh_edge weight must be finite and > 0, "
            f"got {out['weight']!r}"
        )
    return out


def _has_point(points, point_id: int) -> bool:
    try:
        points.get(point_id)
    except PointNotFoundError:
        return False
    return True


def check_conflict(mutation: dict, network, points) -> None:
    """Raise :class:`MutationConflict` if ``mutation`` contradicts state.

    Called under the session lock *before* the WAL append, so the log
    only ever contains mutations that applied cleanly — replay needs no
    conflict handling of its own.
    """
    kind = mutation["kind"]
    if kind == "insert_point":
        u, v = mutation["u"], mutation["v"]
        if not network.has_edge(u, v):
            raise MutationConflict(
                kind, f"edge ({u}, {v}) does not exist in the network"
            )
        point_id = mutation.get("point_id")
        if point_id is not None and _has_point(points, point_id):
            raise MutationConflict(
                kind, f"point id {point_id} already exists"
            )
        weight = network.edge_weight(u, v)
        if mutation["offset"] > weight:
            raise MutationConflict(
                kind,
                f"offset {mutation['offset']!r} exceeds the length "
                f"{weight!r} of edge ({u}, {v})",
            )
    elif kind == "remove_point":
        if not _has_point(points, mutation["point_id"]):
            raise MutationConflict(
                kind, f"point {mutation['point_id']} does not exist"
            )
    else:
        u, v = mutation["u"], mutation["v"]
        if not network.has_edge(u, v):
            raise MutationConflict(
                kind, f"edge ({u}, {v}) does not exist in the network"
            )
