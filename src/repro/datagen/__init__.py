"""Synthetic data generation: road-network analogues and the paper's
Section 5 cluster generator."""

from repro.datagen.clusters import ClusterSpec, generate_clustered_points, suggest_eps
from repro.datagen.networks import delaunay_road_network, grid_city
from repro.datagen.realdata import load_cnode_cedge, load_edge_list_file
from repro.datagen.workloads import (
    PAPER_WORKLOADS,
    WorkloadSpec,
    load_network,
    load_workload,
)

__all__ = [
    "ClusterSpec",
    "generate_clustered_points",
    "suggest_eps",
    "delaunay_road_network",
    "grid_city",
    "load_cnode_cedge",
    "load_edge_list_file",
    "PAPER_WORKLOADS",
    "WorkloadSpec",
    "load_network",
    "load_workload",
]
