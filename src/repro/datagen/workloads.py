"""Named workloads mirroring the paper's four experimental road networks.

The paper's networks (node / edge counts from its Figure 10):

======  =========================  ========  ========  =========
Code    Region                     |V|       |E|       N (points)
======  =========================  ========  ========  =========
NA      North America main roads   175,813   179,179   500K
SF      San Francisco              174,956   223,001   500K
TG      San Joaquin County         18,263    23,874    50K
OL      Oldenburg                  6,105     7,035     20K
======  =========================  ========  ========  =========

The real map files are not redistributable, so :func:`load_network` builds a
synthetic analogue with the same topology statistics via the generators in
:mod:`repro.datagen.networks`, scaled by a configurable factor — pure-Python
traversals are orders of magnitude slower than the paper's 2002 C++ setup,
so benchmarks default to reduced scales while preserving every *relative*
relationship the paper reports (see EXPERIMENTS.md).

NA is sparse relative to its node count (|E| ≈ 1.02 |V|: a highway skeleton)
and is generated with heavy thinning; SF/TG/OL have |E| ≈ 1.2–1.3 |V| and
use moderate thinning.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.clusters import ClusterSpec, generate_clustered_points
from repro.datagen.networks import delaunay_road_network, grid_city
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

__all__ = ["WorkloadSpec", "PAPER_WORKLOADS", "load_network", "load_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one of the paper's network workloads."""

    name: str
    paper_nodes: int
    paper_edges: int
    paper_points: int
    generator: str  # "grid" (planned city) or "delaunay" (organic)
    thinning: float  # edge-removal aggressiveness for the grid generator


PAPER_WORKLOADS: dict[str, WorkloadSpec] = {
    "NA": WorkloadSpec("NA", 175_813, 179_179, 500_000, "delaunay", 0.0),
    "SF": WorkloadSpec("SF", 174_956, 223_001, 500_000, "grid", 0.25),
    "TG": WorkloadSpec("TG", 18_263, 23_874, 50_000, "grid", 0.20),
    "OL": WorkloadSpec("OL", 6_105, 7_035, 20_000, "delaunay", 0.0),
}


def load_network(
    name: str, scale: float = 1 / 16, seed: int = 0
) -> SpatialNetwork:
    """A synthetic analogue of one of the paper's networks.

    Parameters
    ----------
    name:
        One of ``"NA"``, ``"SF"``, ``"TG"``, ``"OL"``.
    scale:
        Fraction of the paper's node count to generate (1.0 for full size).
    seed:
        RNG seed.
    """
    try:
        spec = PAPER_WORKLOADS[name]
    except KeyError:
        raise ParameterError(
            f"unknown workload {name!r}; choose from {sorted(PAPER_WORKLOADS)}"
        ) from None
    if not 0 < scale <= 1:
        raise ParameterError(f"scale must be in (0, 1], got {scale!r}")
    n_nodes = max(16, int(spec.paper_nodes * scale))
    if spec.generator == "grid":
        side = max(4, int(round(n_nodes ** 0.5)))
        width = side
        height = max(4, n_nodes // side)
        return grid_city(
            width,
            height,
            removal=spec.thinning,
            seed=seed,
            name=f"{name}-synthetic",
        )
    # NA/OL: organically grown networks.  NA targets |E| ~= |V| (highway
    # skeleton), OL a typical road density.
    target_degree = 2.0 * spec.paper_edges / spec.paper_nodes
    return delaunay_road_network(
        n_nodes,
        target_degree=max(2.05, target_degree),
        seed=seed,
        name=f"{name}-synthetic",
    )


def load_workload(
    name: str,
    scale: float = 1 / 16,
    k: int = 10,
    n_points: int | None = None,
    s_init: float | None = None,
    seed: int = 0,
    separate_seeds: bool = True,
) -> tuple[SpatialNetwork, PointSet, ClusterSpec]:
    """A network analogue plus the paper's clustered point workload.

    ``n_points`` defaults to the paper's count for the network, scaled.
    ``s_init`` defaults to a value spreading the k clusters over roughly a
    fifth of the total edge length (dense cores, sparse boundaries).  With
    ``separate_seeds`` (the default) cluster starting edges are chosen by
    farthest-point sampling so the planted clusters stay apart, matching
    the visually separated clusters of the paper's Figure 11 datasets.

    Returns ``(network, points, cluster_spec)``; the point labels carry the
    planted ground truth.
    """
    spec = PAPER_WORKLOADS.get(name)
    if spec is None:
        raise ParameterError(
            f"unknown workload {name!r}; choose from {sorted(PAPER_WORKLOADS)}"
        )
    network = load_network(name, scale=scale, seed=seed)
    if n_points is None:
        n_points = max(4 * k, int(spec.paper_points * scale))
    if s_init is None:
        # Mean generated gap is ~3 * s_init over the s_init..s_init*F ramp.
        total_length = network.total_weight()
        avg_gap = 0.2 * total_length / max(1, n_points)
        s_init = max(avg_gap / 3.0, 1e-9)
    cspec = ClusterSpec(k=k, s_init=s_init)
    seed_edges = None
    if separate_seeds:
        from repro.datagen.clusters import well_separated_seed_edges

        seed_edges = well_separated_seed_edges(network, k, seed=seed + 2)
    points = generate_clustered_points(
        network, n_points, cspec, seed=seed + 1, seed_edges=seed_edges
    )
    return network, points, cspec
