"""Synthetic road-network generators.

The paper's experiments use four real road networks (NA, SF, TG, OL) that are
not redistributable here; these generators produce connected, planar, sparse
networks in the same structural regime — |E| ≈ 1.2–1.5 |V|, Euclidean edge
weights, mostly degree-3/4 nodes — which is all the algorithms depend on
(see DESIGN.md, substitution 1).

Two families are provided:

* :func:`grid_city` — a perturbed grid: streets meet at near-right angles
  with jittered intersections and randomly removed road segments, resembling
  a planned city (SF-like);
* :func:`delaunay_road_network` — a Delaunay triangulation of random sites
  thinned down to road density, resembling an organically grown network
  (OL-like).

Both guarantee connectivity (thinning never removes bridges of the current
graph) and determinism given a seed.
"""

from __future__ import annotations

import math
import random

from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork

__all__ = ["grid_city", "delaunay_road_network"]


def grid_city(
    width: int,
    height: int,
    spacing: float = 1.0,
    jitter: float = 0.25,
    removal: float = 0.20,
    seed: int | None = None,
    name: str | None = None,
) -> SpatialNetwork:
    """A perturbed ``width x height`` grid road network.

    Parameters
    ----------
    width, height:
        Grid dimensions in intersections; the network has ``width * height``
        nodes.
    spacing:
        Nominal block length.
    jitter:
        Maximum coordinate perturbation as a fraction of ``spacing``
        (0 disables; keep < 0.5 so that streets do not fold over).
    removal:
        Fraction of street segments to *attempt* removing; a segment is kept
        whenever removing it would disconnect the network, so the result is
        always connected.
    seed:
        RNG seed for reproducibility.
    """
    if width < 1 or height < 1:
        raise ParameterError("width and height must be >= 1")
    if not 0 <= jitter < 0.5:
        raise ParameterError(f"jitter must be in [0, 0.5), got {jitter!r}")
    if not 0 <= removal < 1:
        raise ParameterError(f"removal must be in [0, 1), got {removal!r}")
    rng = random.Random(seed)
    net = SpatialNetwork(name=name or f"grid-city-{width}x{height}")

    def nid(i: int, j: int) -> int:
        return i * height + j

    for i in range(width):
        for j in range(height):
            dx = rng.uniform(-jitter, jitter) * spacing
            dy = rng.uniform(-jitter, jitter) * spacing
            net.add_node(nid(i, j), x=i * spacing + dx, y=j * spacing + dy)

    segments: list[tuple[int, int]] = []
    for i in range(width):
        for j in range(height):
            if i + 1 < width:
                segments.append((nid(i, j), nid(i + 1, j)))
            if j + 1 < height:
                segments.append((nid(i, j), nid(i, j + 1)))
    for u, v in segments:
        net.add_edge(u, v)  # weight = Euclidean distance of jittered nodes

    _thin_edges(net, removal, rng)
    return net


def delaunay_road_network(
    n_nodes: int,
    extent: float = 100.0,
    target_degree: float = 2.8,
    seed: int | None = None,
    name: str | None = None,
) -> SpatialNetwork:
    """A road-like planar network from a thinned Delaunay triangulation.

    Random sites in an ``extent x extent`` square are triangulated
    (scipy.spatial.Delaunay); the triangulation — average degree ≈ 6 — is
    then thinned to ``target_degree`` by removing the *longest* non-bridge
    edges first, mimicking how road networks avoid redundant long links.
    """
    if n_nodes < 2:
        raise ParameterError(f"n_nodes must be >= 2, got {n_nodes!r}")
    if target_degree <= 2:
        raise ParameterError("target_degree must exceed 2 to stay connected")
    from scipy.spatial import Delaunay  # deferred: scipy is heavyweight

    rng = random.Random(seed)
    import numpy as np

    coords = np.array(
        [[rng.uniform(0, extent), rng.uniform(0, extent)] for _ in range(n_nodes)]
    )
    net = SpatialNetwork(name=name or f"delaunay-{n_nodes}")
    for node in range(n_nodes):
        net.add_node(node, x=float(coords[node, 0]), y=float(coords[node, 1]))
    if n_nodes == 2:
        net.add_edge(0, 1)
        return net
    if n_nodes == 3:
        net.add_edge(0, 1)
        net.add_edge(1, 2)
        return net

    tri = Delaunay(coords)
    edges: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        edges.add((min(a, b), max(a, b)))
        edges.add((min(b, c), max(b, c)))
        edges.add((min(a, c), max(a, c)))
    for u, v in edges:
        net.add_edge(u, v)

    target_edges = int(target_degree * n_nodes / 2)
    surplus = net.num_edges - target_edges
    if surplus > 0:
        # Remove longest edges first, skipping bridges.
        by_length = sorted(net.edges(), key=lambda e: -e[2])
        removed = 0
        for u, v, _ in by_length:
            if removed >= surplus:
                break
            if _is_removable(net, u, v):
                net.remove_edge(u, v)
                removed += 1
    return net


def _thin_edges(net: SpatialNetwork, removal: float, rng: random.Random) -> None:
    """Randomly remove up to ``removal`` of the edges, never disconnecting."""
    if removal <= 0:
        return
    candidates = list(net.edges())
    rng.shuffle(candidates)
    budget = int(removal * len(candidates))
    removed = 0
    for u, v, _ in candidates:
        if removed >= budget:
            break
        if _is_removable(net, u, v):
            net.remove_edge(u, v)
            removed += 1


def _is_removable(net: SpatialNetwork, u: int, v: int, max_depth: int = 12) -> bool:
    """Whether edge (u, v) provably lies on a *short* cycle.

    Checked by a BFS from ``u`` to ``v`` of at most ``max_depth`` hops that
    ignores the edge itself.  The depth bound keeps generation linear-time;
    it is conservative (an edge on only long cycles is treated as a bridge
    and kept), which can only err on the side of keeping the network
    connected.
    """
    if net.degree(u) <= 1 or net.degree(v) <= 1:
        return False
    seen = {u}
    frontier = [u]
    for _ in range(max_depth):
        if not frontier:
            break
        nxt: list[int] = []
        for node in frontier:
            for nbr, _ in net.neighbors(node):
                if node == u and nbr == v:
                    continue  # skip the candidate edge itself
                if nbr == v:
                    return True
                if nbr not in seen:
                    seen.add(nbr)
                    nxt.append(nbr)
        frontier = nxt
    return False

