"""Loaders for real road-network files.

The paper's networks come from two public sources: the Brinkhoff
generator's city maps (Oldenburg, San Joaquin) and cleaned US road data —
today distributed almost universally in the ``.cnode`` / ``.cedge`` text
format:

``name.cnode`` — one node per line::

    <node id> <x> <y>

``name.cedge`` — one edge per line::

    <edge id> <start node> <end node> <length>

With the real files on disk, :func:`load_cnode_cedge` rebuilds the paper's
*actual* networks (use
:func:`~repro.network.components.largest_connected_component` afterwards,
as the paper did for SF and TG: "since the original SF and TG networks were
not connected, we extracted the largest connected component").  Without
them, the synthetic analogues of :mod:`repro.datagen.workloads` stand in.

A generic whitespace/CSV edge-list loader is included for other sources.
"""

from __future__ import annotations

import os

from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork

__all__ = ["load_cnode_cedge", "load_edge_list_file"]


def _parse_lines(path: str):
    with open(os.fspath(path), encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield lineno, line.replace(",", " ").split()


def load_cnode_cedge(
    cnode_path: str,
    cedge_path: str,
    name: str | None = None,
) -> SpatialNetwork:
    """Build a network from a ``.cnode`` / ``.cedge`` file pair.

    Edge lengths are taken from the file (they are the network weights);
    node coordinates are kept for visualisation and the Euclidean-bound
    search.  Zero-length edges (they occur in the raw US datasets) are
    replaced by a tiny positive weight, and duplicate edges keep the
    smallest length.
    """
    net = SpatialNetwork(name=name or os.path.basename(os.fspath(cnode_path)))
    for lineno, parts in _parse_lines(cnode_path):
        if len(parts) < 3:
            raise ParameterError(
                f"{cnode_path}:{lineno}: expected 'id x y', got {parts!r}"
            )
        node, x, y = int(parts[0]), float(parts[1]), float(parts[2])
        net.add_node(node, x=x, y=y)
    for lineno, parts in _parse_lines(cedge_path):
        if len(parts) < 4:
            raise ParameterError(
                f"{cedge_path}:{lineno}: expected 'id start end length', "
                f"got {parts!r}"
            )
        u, v, length = int(parts[1]), int(parts[2]), float(parts[3])
        if u == v:
            continue  # self-loops occur in raw data; the model excludes them
        if not net.has_node(u) or not net.has_node(v):
            raise ParameterError(
                f"{cedge_path}:{lineno}: edge references unknown node"
            )
        weight = length if length > 0 else 1e-9
        if net.has_edge(u, v):
            weight = min(weight, net.edge_weight(u, v))
        net.add_edge(u, v, weight)
    return net


def load_edge_list_file(
    path: str,
    name: str | None = None,
    has_coords: bool = False,
) -> SpatialNetwork:
    """Build a network from a plain edge-list file.

    Each line is ``u v weight`` (whitespace- or comma-separated; ``#``
    comments and blank lines ignored).  With ``has_coords`` the file is
    instead ``u v weight ux uy vx vy`` carrying the endpoints' coordinates.
    """
    net = SpatialNetwork(name=name or os.path.basename(os.fspath(path)))
    for lineno, parts in _parse_lines(path):
        want = 7 if has_coords else 3
        if len(parts) < want:
            raise ParameterError(
                f"{path}:{lineno}: expected {want} fields, got {parts!r}"
            )
        u, v, weight = int(parts[0]), int(parts[1]), float(parts[2])
        if has_coords:
            net.add_node(u, x=float(parts[3]), y=float(parts[4]))
            net.add_node(v, x=float(parts[5]), y=float(parts[6]))
        net.add_edge(u, v, weight)
    return net
