"""The paper's synthetic cluster generator (Section 5, "On the road
networks, we generated data that simulate real world clusters").

For each planted cluster:

1. a random edge is chosen and the cluster's first point is generated on it;
2. the network is traversed outward with Dijkstra's algorithm; "whenever an
   edge is met for the first time, points are generated on it";
3. the gap from a newly generated point to the previous one is drawn
   uniformly from ``[0.5 * s_cur, 1.5 * s_cur]`` where

       s_cur = s_init + s_init * (F - 1) * |C| / C_final

   ramps from ``s_init`` (dense core) to ``s_init * F`` (sparse boundary) as
   the cluster fills up.

As in the paper's experiments, 99% of the points are evenly distributed over
``k`` equal-sized clusters (labels ``0 .. k-1``) and 1% are uniform random
outliers (label ``NOISE``), with ``F = 5``.
"""

from __future__ import annotations

import heapq
import math
import random

from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

__all__ = [
    "generate_clustered_points",
    "ClusterSpec",
    "suggest_eps",
    "well_separated_seed_edges",
]


class ClusterSpec:
    """Parameters of the paper's generator, bundled for reuse in reports.

    Attributes mirror the paper's symbols: ``s_init`` (initial separation
    distance), ``magnification`` (F > 1), ``outlier_fraction``.
    """

    def __init__(
        self,
        k: int,
        s_init: float,
        magnification: float = 5.0,
        outlier_fraction: float = 0.01,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k!r}")
        if s_init <= 0:
            raise ParameterError(f"s_init must be positive, got {s_init!r}")
        if magnification <= 1:
            raise ParameterError(
                f"magnification F must exceed 1, got {magnification!r}"
            )
        if not 0 <= outlier_fraction < 1:
            raise ParameterError(
                f"outlier_fraction must be in [0, 1), got {outlier_fraction!r}"
            )
        self.k = k
        self.s_init = float(s_init)
        self.magnification = float(magnification)
        self.outlier_fraction = float(outlier_fraction)

    @property
    def s_final(self) -> float:
        """The spacing reached at the cluster boundary: s_init * F."""
        return self.s_init * self.magnification

    def __repr__(self) -> str:
        return (
            f"ClusterSpec(k={self.k}, s_init={self.s_init:g}, "
            f"F={self.magnification:g}, outliers={self.outlier_fraction:g})"
        )


def suggest_eps(spec: ClusterSpec, safety: float = 1.5) -> float:
    """The ε that recovers the generated clusters.

    The maximum gap the generator can produce inside a cluster is
    ``1.5 * s_init * F``; the paper uses exactly ``eps = 1.5 * s_init * F``
    for the Figure 11 density-based runs.  ``safety`` is that 1.5 factor.
    """
    return safety * spec.s_final


def generate_clustered_points(
    network: SpatialNetwork,
    n_points: int,
    spec: ClusterSpec,
    seed: int | None = None,
    seed_edges: list[tuple[int, int]] | None = None,
) -> PointSet:
    """Generate ``n_points`` labelled points on the network per the paper.

    Parameters
    ----------
    network:
        A connected network to place points on.
    n_points:
        Total number of points (cluster points + outliers).
    spec:
        Generator parameters (k, s_init, F, outlier fraction).
    seed:
        RNG seed for reproducibility.
    seed_edges:
        Optional explicit starting edges, one per cluster (useful for
        placing clusters far apart deterministically); random edges when
        omitted.

    Returns
    -------
    A :class:`PointSet` whose points carry ground-truth labels: cluster
    index in ``0..k-1``, or ``NOISE`` for outliers.
    """
    if n_points < spec.k:
        raise ParameterError(
            f"n_points={n_points} is smaller than the number of clusters {spec.k}"
        )
    rng = random.Random(seed)
    edges = list(network.edges())
    if not edges:
        raise ParameterError("the network has no edges to place points on")
    if seed_edges is not None and len(seed_edges) != spec.k:
        raise ParameterError(
            f"seed_edges must hold exactly {spec.k} edges, got {len(seed_edges)}"
        )

    n_outliers = int(round(spec.outlier_fraction * n_points))
    n_clustered = n_points - n_outliers
    base = n_clustered // spec.k
    sizes = [base + (1 if i < n_clustered % spec.k else 0) for i in range(spec.k)]

    points = PointSet(network)
    for label, size in enumerate(sizes):
        if size == 0:
            continue
        if seed_edges is not None:
            start_edge = seed_edges[label]
        else:
            start_edge = edges[rng.randrange(len(edges))][:2]
        _grow_cluster(network, points, rng, spec, label, size, start_edge)

    for _ in range(n_outliers):
        u, v, w = edges[rng.randrange(len(edges))]
        points.add(u, v, rng.uniform(0.0, w), label=NOISE)
    return points


def well_separated_seed_edges(
    network: SpatialNetwork, k: int, seed: int | None = None
) -> list[tuple[int, int]]:
    """``k`` starting edges spread out over the network.

    Greedy farthest-point sampling on the edges' Euclidean midpoints
    (requires node coordinates): start from a random edge, then repeatedly
    pick the edge farthest from all previously picked ones.  Keeps planted
    clusters from colliding, which is what the paper's visually separated
    Figure 11 clusters rely on.
    """
    rng = random.Random(seed)
    edges = list(network.edges())
    if len(edges) < k:
        raise ParameterError(f"network has {len(edges)} edges, need {k} seeds")
    midpoints = []
    for u, v, _ in edges:
        ux, uy = network.node_coords(u)
        vx, vy = network.node_coords(v)
        midpoints.append(((ux + vx) / 2.0, (uy + vy) / 2.0))
    chosen = [rng.randrange(len(edges))]
    min_dist = [
        (mx - midpoints[chosen[0]][0]) ** 2 + (my - midpoints[chosen[0]][1]) ** 2
        for mx, my in midpoints
    ]
    while len(chosen) < k:
        best = max(range(len(edges)), key=lambda i: min_dist[i])
        chosen.append(best)
        bx, by = midpoints[best]
        for i, (mx, my) in enumerate(midpoints):
            d = (mx - bx) ** 2 + (my - by) ** 2
            if d < min_dist[i]:
                min_dist[i] = d
    return [(edges[i][0], edges[i][1]) for i in chosen]


def _grow_cluster(
    network: SpatialNetwork,
    points: PointSet,
    rng: random.Random,
    spec: ClusterSpec,
    label: int,
    size: int,
    start_edge: tuple[int, int],
) -> None:
    """Grow one cluster of ``size`` points by Dijkstra expansion."""
    su, sv = min(start_edge), max(start_edge)
    weight = network.edge_weight(su, sv)
    start_offset = rng.uniform(0.0, weight)
    points.add(su, sv, start_offset, label=label)
    placed = 1

    def next_gap() -> float:
        s_cur = spec.s_init + spec.s_init * (spec.magnification - 1) * placed / size
        return rng.uniform(0.5 * s_cur, 1.5 * s_cur)

    # The generator conceptually *walks* the expansion tree dropping a point
    # every `gap` units.  `pending[n]` is how much of the current gap remains
    # to walk when the expansion passes through node n; carrying it into
    # each newly met edge makes the path distance between consecutive points
    # along every branch *exactly* one drawn gap, so no intra-cluster gap
    # ever exceeds 1.5 * s_init * F — the property the paper's
    # eps = 1.5 * s_init * F relies on to recover the clusters.
    pending: dict[int, float] = {}

    def walk_edge(a: int, b: int, w: float, pos: float, to_next: float) -> float:
        """Place points on edge (a, b) walking from ``a`` (which sits at
        offset ``pos`` of the walk) with ``to_next`` of the current gap
        left; returns the gap remainder carried past ``b``."""
        nonlocal placed
        while placed < size:
            if to_next > w - pos:
                return to_next - (w - pos)
            pos += to_next
            offset = pos if a == min(a, b) else w - pos
            points.add(min(a, b), max(a, b), offset, label=label)
            placed += 1
            to_next = next_gap()
        return math.inf  # cluster complete: nothing to carry

    # Populate the start edge outward from the seed point in both directions.
    carry_sv = walk_edge(su, sv, weight, start_offset, next_gap())
    pending[sv] = carry_sv
    # Towards su: walk the mirrored edge (distance from sv is weight-offset).
    carry_su = walk_edge(sv, su, weight, weight - start_offset, next_gap())
    pending[su] = carry_su

    # Dijkstra over nodes, seeded by the start edge's endpoints; every edge
    # met for the first time is populated continuing the walk.
    visited_edges = {(su, sv)}
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [
        (start_offset, su),
        (weight - start_offset, sv),
    ]
    while heap and placed < size:
        d, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        to_next = pending.get(node, next_gap())
        for nbr, w in network.neighbors(node):
            edge = (min(node, nbr), max(node, nbr))
            if edge not in visited_edges:
                visited_edges.add(edge)
                carried = walk_edge(node, nbr, w, 0.0, to_next)
                if carried < pending.get(nbr, math.inf):
                    pending[nbr] = carried
            if nbr not in dist:
                heapq.heappush(heap, (d + w, nbr))
        if placed >= size:
            return
    # Fallback: the expansion ran out of fresh edges (tiny networks).  Place
    # the remainder uniformly on the start edge so the cluster stays local.
    while placed < size:
        points.add(su, sv, rng.uniform(0.0, weight), label=label)
        placed += 1
