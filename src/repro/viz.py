"""Dependency-free SVG rendering of networks, clusterings, and plots.

Produces the visual artefacts of the paper's figures without any plotting
library: the road-network maps of Figure 10, the coloured clustering views
of Figure 11, the merge-distance curve of Figure 15, and OPTICS
reachability plots.  Output is plain SVG markup (a string, optionally
written to a file) viewable in any browser.
"""

from __future__ import annotations

import html
import math
import os
from collections.abc import Mapping

from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

__all__ = [
    "render_network_svg",
    "render_merge_curve_svg",
    "render_reachability_svg",
    "render_dendrogram_svg",
    "CLUSTER_PALETTE",
]

# A qualitative palette with clearly distinguishable hues; cycled when a
# clustering has more clusters than entries.
CLUSTER_PALETTE = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00",
    "#a65628", "#f781bf", "#17becf", "#bcbd22", "#666699",
    "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854",
]

_NOISE_COLOR = "#999999"
_EDGE_COLOR = "#cccccc"


def _bounds(network: SpatialNetwork) -> tuple[float, float, float, float]:
    xs, ys = [], []
    for node in network.nodes():
        if network.has_coords(node):
            x, y = network.node_coords(node)
            xs.append(x)
            ys.append(y)
    if not xs:
        raise ParameterError("rendering requires node coordinates")
    return min(xs), min(ys), max(xs), max(ys)


class _Projector:
    """Maps data coordinates into an SVG viewport (y axis flipped)."""

    def __init__(self, network: SpatialNetwork, width: int, margin: int) -> None:
        x0, y0, x1, y1 = _bounds(network)
        span_x = max(x1 - x0, 1e-12)
        span_y = max(y1 - y0, 1e-12)
        scale = (width - 2 * margin) / span_x
        self.height = int(2 * margin + span_y * scale)
        self._x0, self._y1 = x0, y1
        self._scale = scale
        self._margin = margin

    def __call__(self, x: float, y: float) -> tuple[float, float]:
        px = self._margin + (x - self._x0) * self._scale
        py = self._margin + (self._y1 - y) * self._scale
        return (round(px, 2), round(py, 2))


def _svg_document(width: int, height: int, body: list[str], title: str) -> str:
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    )
    caption = (
        f'<text x="8" y="16" font-family="sans-serif" font-size="12" '
        f'fill="#333">{html.escape(title)}</text>'
    )
    return "\n".join([head, caption, *body, "</svg>"])


def _write(svg: str, path: str | None) -> str:
    if path is not None:
        with open(os.fspath(path), "w", encoding="utf-8") as fh:
            fh.write(svg)
    return svg


def color_for(label: int) -> str:
    """The palette colour of a cluster label (grey for noise)."""
    if label == NOISE:
        return _NOISE_COLOR
    return CLUSTER_PALETTE[label % len(CLUSTER_PALETTE)]


def render_network_svg(
    network: SpatialNetwork,
    points: PointSet | None = None,
    assignment: Mapping[int, int] | None = None,
    path: str | None = None,
    width: int = 800,
    margin: int = 24,
    point_radius: float = 3.0,
    title: str | None = None,
) -> str:
    """Render a network map, optionally with clustered objects.

    Parameters
    ----------
    network:
        Must carry node coordinates.
    points:
        Objects to draw (positions interpolated along their edges).
    assignment:
        Optional ``point_id -> cluster label`` colouring (e.g.
        ``result.assignment``); noise renders grey.  Without it, point
        ground-truth labels are used when present, else a single colour.
    path:
        Optional output file.

    Returns the SVG markup.
    """
    project = _Projector(network, width, margin)
    body: list[str] = []
    for u, v, _ in network.edges():
        if not (network.has_coords(u) and network.has_coords(v)):
            continue
        x1, y1 = project(*network.node_coords(u))
        x2, y2 = project(*network.node_coords(v))
        body.append(
            f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
            f'stroke="{_EDGE_COLOR}" stroke-width="1"/>'
        )
    if points is not None:
        for p in points:
            px, py = project(*p.coords(network))
            if assignment is not None:
                label = assignment.get(p.point_id, NOISE)
            elif p.label is not None:
                label = p.label
            else:
                label = 0
            body.append(
                f'<circle cx="{px}" cy="{py}" r="{point_radius}" '
                f'fill="{color_for(label)}" fill-opacity="0.85"/>'
            )
    svg = _svg_document(
        width, project.height, body, title or f"{network.name}"
    )
    return _write(svg, path)


def render_merge_curve_svg(
    merge_distances: list[float],
    tail: int = 49,
    interesting: list[int] | None = None,
    path: str | None = None,
    width: int = 640,
    height: int = 320,
    title: str = "Single-Link merge distances",
) -> str:
    """The paper's Figure 15: merge distance of the last ``tail`` merges.

    ``interesting`` optionally marks merge indices (as returned by
    :meth:`~repro.core.dendrogram.Dendrogram.interesting_levels`) with
    arrows, like the figure's annotations.
    """
    if not merge_distances:
        raise ParameterError("no merges to plot")
    start = max(0, len(merge_distances) - tail)
    series = merge_distances[start:]
    margin = 36
    max_d = max(series) or 1.0
    n = len(series)
    step = (width - 2 * margin) / max(n - 1, 1)

    def xy(i: int, d: float) -> tuple[float, float]:
        return (
            round(margin + i * step, 2),
            round(height - margin - (d / max_d) * (height - 2 * margin), 2),
        )

    pts = " ".join(f"{x},{y}" for x, y in (xy(i, d) for i, d in enumerate(series)))
    body = [
        f'<polyline points="{pts}" fill="none" stroke="#377eb8" stroke-width="2"/>',
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="#333"/>',
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{height - margin}" stroke="#333"/>',
    ]
    for idx in interesting or []:
        local = idx - start
        if 0 <= local < n:
            x, y = xy(local, series[local])
            body.append(
                f'<path d="M {x} {y - 18} L {x} {y - 6}" stroke="#e41a1c" '
                f'stroke-width="2" marker-end="none"/>'
            )
            body.append(
                f'<circle cx="{x}" cy="{y}" r="3.5" fill="#e41a1c"/>'
            )
    svg = _svg_document(width, height, body, title)
    return _write(svg, path)


def render_dendrogram_svg(
    dendrogram,
    path: str | None = None,
    width: int = 640,
    height: int = 420,
    max_leaves: int = 120,
    title: str = "Single-Link dendrogram",
) -> str:
    """Render a dendrogram as the classic merge-tree diagram.

    Leaves sit on the bottom axis (each annotated with its point count when
    leaves are δ-groups); every merge draws the bracket joining its two
    children at a height proportional to the merge distance.  Dendrograms
    with more than ``max_leaves`` leaves are rejected — rebuild with a
    larger δ first (exactly what the paper's scalability heuristic is for).
    """
    n_leaves = dendrogram.num_leaves
    if n_leaves == 0:
        raise ParameterError("the dendrogram has no leaves")
    if n_leaves > max_leaves:
        raise ParameterError(
            f"{n_leaves} leaves exceed max_leaves={max_leaves}; "
            "use the delta heuristic to shrink the dendrogram first"
        )
    margin = 36
    plot_w = width - 2 * margin
    plot_h = height - 2 * margin
    max_d = max((m.distance for m in dendrogram.merges), default=1.0) or 1.0

    def y_of(distance: float) -> float:
        return round(height - margin - (distance / max_d) * plot_h, 2)

    # Order leaves so merges never cross: in-order walk of the merge tree.
    children: dict[int, tuple[int, int]] = {
        m.merged: (m.left, m.right) for m in dendrogram.merges
    }
    roots = set(range(n_leaves)) | {m.merged for m in dendrogram.merges}
    for m in dendrogram.merges:
        roots.discard(m.left)
        roots.discard(m.right)
    order: list[int] = []

    def walk(cluster: int) -> None:
        if cluster < n_leaves:
            order.append(cluster)
            return
        left, right = children[cluster]
        walk(left)
        walk(right)

    for root in sorted(roots):
        walk(root)
    slot = {leaf: i for i, leaf in enumerate(order)}
    step = plot_w / max(n_leaves - 1, 1)

    # x position and current top height per active cluster.
    x_of: dict[int, float] = {
        leaf: round(margin + slot[leaf] * step, 2) for leaf in range(n_leaves)
    }
    top_y: dict[int, float] = {leaf: float(height - margin) for leaf in range(n_leaves)}
    body: list[str] = []
    for leaf in range(n_leaves):
        count = len(dendrogram.leaf_members[leaf])
        if count > 1:
            body.append(
                f'<text x="{x_of[leaf]}" y="{height - margin + 14}" '
                f'font-family="sans-serif" font-size="9" fill="#666" '
                f'text-anchor="middle">{count}</text>'
            )
    for m in dendrogram.merges:
        xl, xr = x_of[m.left], x_of[m.right]
        yl, yr = top_y[m.left], top_y[m.right]
        y = y_of(m.distance)
        body.append(
            f'<path d="M {xl} {yl} L {xl} {y} L {xr} {y} L {xr} {yr}" '
            f'fill="none" stroke="#377eb8" stroke-width="1.5"/>'
        )
        x_of[m.merged] = round((xl + xr) / 2, 2)
        top_y[m.merged] = y
    body.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="#333"/>'
    )
    svg = _svg_document(width, height, body, title)
    return _write(svg, path)


def render_reachability_svg(
    reachability_plot: list[tuple[int, float]],
    max_eps: float,
    path: str | None = None,
    width: int = 640,
    height: int = 240,
    title: str = "OPTICS reachability plot",
) -> str:
    """Bar-style reachability plot of an OPTICS ordering.

    Infinite reachabilities (region starts) render as full-height bars.
    """
    if not reachability_plot:
        raise ParameterError("empty ordering")
    margin = 30
    n = len(reachability_plot)
    bar = max((width - 2 * margin) / n, 0.5)
    plot_h = height - 2 * margin
    body = []
    for i, (_, reach) in enumerate(reachability_plot):
        frac = 1.0 if math.isinf(reach) else min(reach / max_eps, 1.0)
        bh = round(frac * plot_h, 2)
        x = round(margin + i * bar, 2)
        y = round(height - margin - bh, 2)
        color = "#984ea3" if math.isinf(reach) else "#377eb8"
        body.append(
            f'<rect x="{x}" y="{y}" width="{max(bar - 0.2, 0.3):.2f}" '
            f'height="{bh}" fill="{color}"/>'
        )
    body.append(
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="#333"/>'
    )
    svg = _svg_document(width, height, body, title)
    return _write(svg, path)
