"""repro — Clustering objects on a spatial network.

A faithful, production-quality reproduction of *"Clustering Objects on a
Spatial Network"* (Yiu & Mamoulis, SIGMOD 2004): clustering algorithms for
objects that lie on the edges of a large weighted network, where object
dissimilarity is the shortest-path (network) distance.

Public API highlights
---------------------
Network substrate
    :class:`~repro.network.SpatialNetwork`, :class:`~repro.network.PointSet`,
    :func:`~repro.network.network_distance`, :func:`~repro.network.range_query`,
    :func:`~repro.network.knn_query`.
Clustering algorithms (the paper's Section 4)
    :class:`~repro.core.NetworkKMedoids`, :class:`~repro.core.EpsLink`,
    :class:`~repro.core.NetworkDBSCAN`, :class:`~repro.core.SingleLink`.
Disk-backed storage (Section 4.1)
    :class:`~repro.storage.NetworkStore`.
Data generation (Section 5's synthetic workloads)
    :mod:`repro.datagen`.

Quickstart
----------
>>> from repro import SpatialNetwork, PointSet, EpsLink
>>> net = SpatialNetwork.from_edge_list([(1, 2, 2.0), (2, 3, 3.0)])
>>> pts = PointSet(net)
>>> _ = pts.add(1, 2, 0.2); _ = pts.add(1, 2, 0.4); _ = pts.add(2, 3, 2.9)
>>> result = EpsLink(net, pts, eps=0.5).run()
>>> result.num_clusters
2
"""

from repro.exceptions import (
    BudgetExceededError,
    Cancelled,
    ChecksumError,
    CircuitOpenError,
    DeadlineExceeded,
    Interrupted,
    NetworkError,
    Overloaded,
    PageCorruptError,
    ParameterError,
    PointError,
    PoisonRequest,
    ReproError,
    StorageError,
    UnreachableError,
    WorkerCrashed,
)
from repro.network import (
    AugmentedView,
    CSRNetwork,
    NetworkBackend,
    NetworkPoint,
    PointSet,
    SpatialNetwork,
    knn_query,
    network_distance,
    network_distance_formula,
    range_query,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Exceptions
    "ReproError",
    "NetworkError",
    "PointError",
    "UnreachableError",
    "ParameterError",
    "StorageError",
    "ChecksumError",
    "PageCorruptError",
    "BudgetExceededError",
    "Interrupted",
    "DeadlineExceeded",
    "Cancelled",
    "Overloaded",
    "CircuitOpenError",
    "WorkerCrashed",
    "PoisonRequest",
    # Network substrate
    "SpatialNetwork",
    "CSRNetwork",
    "NetworkBackend",
    "PointSet",
    "NetworkPoint",
    "AugmentedView",
    "network_distance",
    "network_distance_formula",
    "range_query",
    "knn_query",
]


def __getattr__(name):
    """Lazily expose the clustering / storage layers.

    Keeps ``import repro`` light while still allowing
    ``from repro import EpsLink`` etc. without importing everything eagerly.
    """
    lazy = {
        "NetworkKMedoids": "repro.core",
        "EpsLink": "repro.core",
        "EpsLinkEdgewise": "repro.core",
        "IncrementalEpsLink": "repro.core",
        "NetworkDBSCAN": "repro.core",
        "NetworkOPTICS": "repro.core",
        "SingleLink": "repro.core",
        "ClusteringResult": "repro.core",
        "Dendrogram": "repro.core",
        "NetworkStore": "repro.storage",
        "verify_store": "repro.storage",
        "OpBudget": "repro.faults",
        "FaultRule": "repro.faults",
        "CrashPoint": "repro.faults",
        "CheckpointManager": "repro.recovery",
        "RetryPolicy": "repro.recovery",
        "RepairReport": "repro.recovery",
        "load_checkpoint": "repro.recovery",
        "save_checkpoint": "repro.recovery",
        "repair_store": "repro.recovery",
        "salvage_store": "repro.recovery",
        "Deadline": "repro.resilience",
        "CancelToken": "repro.resilience",
        "CircuitBreaker": "repro.resilience",
        "VirtualClock": "repro.resilience",
        "TickingClock": "repro.resilience",
        "QueryService": "repro.serve",
        "SupervisedPool": "repro.serve",
        "RemoteRequestError": "repro.serve",
        "DistanceAccelerator": "repro.perf",
        "DistanceCache": "repro.perf",
        "LandmarkIndex": "repro.perf",
        "PersistedLandmarkIndex": "repro.perf",
        "build_index_file": "repro.perf",
        "load_index": "repro.perf",
        "network_fingerprint": "repro.perf",
        "verify_index": "repro.perf",
    }
    if name in lazy:
        import importlib

        module = importlib.import_module(lazy[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    if name == "faults":
        import importlib

        module = importlib.import_module("repro.faults")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
