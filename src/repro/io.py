"""JSON (de)serialisation of networks, point sets, and clustering results.

A small, dependency-free interchange format so workloads and results can be
saved, shared, and re-analysed — and so the command-line interface
(:mod:`repro.cli`) can pipeline generate → cluster → evaluate → render.

Format (version 1)::

    {
      "format": "repro-workload", "version": 1,
      "network": {
        "name": ...,
        "nodes": [[id, x, y] | [id]],
        "edges": [[u, v, weight], ...]
      },
      "points": [[id, u, v, offset, label?], ...]
    }

    {
      "format": "repro-clustering", "version": 1,
      "algorithm": ..., "params": {...}, "stats": {...},
      "assignment": {"pid": label, ...}
    }
"""

from __future__ import annotations

import json
import os

from repro.core.result import ClusteringResult
from repro.exceptions import ReproError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

__all__ = [
    "workload_to_dict",
    "workload_from_dict",
    "save_workload",
    "load_workload_file",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result_file",
]

_WORKLOAD_FORMAT = "repro-workload"
_RESULT_FORMAT = "repro-clustering"
_VERSION = 1


class FormatError(ReproError):
    """The file is not a recognised repro interchange document."""


# ---------------------------------------------------------------------------
# Workloads (network + points)
# ---------------------------------------------------------------------------
def workload_to_dict(network: SpatialNetwork, points: PointSet | None = None) -> dict:
    """Serialise a network (and optional point set) to a JSON-able dict."""
    nodes = []
    for node in network.nodes():
        if network.has_coords(node):
            x, y = network.node_coords(node)
            nodes.append([node, x, y])
        else:
            nodes.append([node])
    edges = [[u, v, w] for u, v, w in network.edges()]
    doc = {
        "format": _WORKLOAD_FORMAT,
        "version": _VERSION,
        "network": {"name": network.name, "nodes": nodes, "edges": edges},
        "points": [],
    }
    if points is not None:
        for p in points:
            record = [p.point_id, p.u, p.v, p.offset]
            if p.label is not None:
                record.append(p.label)
            doc["points"].append(record)
    return doc


def workload_from_dict(doc: dict) -> tuple[SpatialNetwork, PointSet]:
    """Rebuild a network and point set from :func:`workload_to_dict` output."""
    if doc.get("format") != _WORKLOAD_FORMAT:
        raise FormatError(f"not a {_WORKLOAD_FORMAT} document")
    if doc.get("version") != _VERSION:
        raise FormatError(f"unsupported version {doc.get('version')!r}")
    net_doc = doc["network"]
    network = SpatialNetwork(name=net_doc.get("name", "network"))
    for record in net_doc["nodes"]:
        if len(record) == 3:
            network.add_node(int(record[0]), x=float(record[1]), y=float(record[2]))
        else:
            network.add_node(int(record[0]))
    for u, v, w in net_doc["edges"]:
        network.add_edge(int(u), int(v), float(w))
    points = PointSet(network)
    for record in doc.get("points", []):
        pid, u, v, offset = record[:4]
        label = int(record[4]) if len(record) > 4 else None
        points.add(int(u), int(v), float(offset), point_id=int(pid), label=label)
    return network, points


def save_workload(
    path: str, network: SpatialNetwork, points: PointSet | None = None
) -> None:
    """Write a workload JSON file."""
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(workload_to_dict(network, points), fh)


def load_workload_file(path: str) -> tuple[SpatialNetwork, PointSet]:
    """Read a workload JSON file."""
    with open(os.fspath(path), encoding="utf-8") as fh:
        return workload_from_dict(json.load(fh))


# ---------------------------------------------------------------------------
# Clustering results
# ---------------------------------------------------------------------------
def _jsonable(value):
    """Best-effort conversion of stats values to JSON-safe types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def result_to_dict(result: ClusteringResult) -> dict:
    return {
        "format": _RESULT_FORMAT,
        "version": _VERSION,
        "algorithm": result.algorithm,
        "params": _jsonable(result.params),
        "stats": _jsonable(result.stats),
        "assignment": {str(pid): label for pid, label in result.assignment.items()},
    }


def result_from_dict(doc: dict) -> ClusteringResult:
    if doc.get("format") != _RESULT_FORMAT:
        raise FormatError(f"not a {_RESULT_FORMAT} document")
    if doc.get("version") != _VERSION:
        raise FormatError(f"unsupported version {doc.get('version')!r}")
    assignment = {int(pid): int(label) for pid, label in doc["assignment"].items()}
    return ClusteringResult(
        assignment,
        algorithm=doc.get("algorithm", "unknown"),
        params=doc.get("params", {}),
        stats=doc.get("stats", {}),
    )


def save_result(path: str, result: ClusteringResult) -> None:
    with open(os.fspath(path), "w", encoding="utf-8") as fh:
        json.dump(result_to_dict(result), fh)


def load_result_file(path: str) -> ClusteringResult:
    with open(os.fspath(path), encoding="utf-8") as fh:
        return result_from_dict(json.load(fh))
