"""Worker process entry point for the supervised serve pool.

Each worker is a separate OS process launched by
:class:`repro.serve.SupervisedPool` as ``python -m repro.serve.worker
'<spec-json>'``.  It opens the served workload itself (read-only — a
worker can die at any instruction without corrupting shared state),
arms any fault-injection plan shipped in the spec, then answers framed
requests over its stdin/stdout pipes until EOF.

Frames (see :mod:`repro.serve.frames`) are supervisor→worker::

    {"seq": 7, "request": {...}, "deadline_s": 0.25}
    {"seq": 8, "ping": true}

and worker→supervisor::

    {"seq": 7, "ok": true, "result": ...}
    {"seq": 7, "ok": false, "error": "BadRequest", "message": "..."}
    {"seq": 8, "pong": true, "pid": 1234}

``seq`` is the supervisor's per-worker sequence number; the worker
echoes it verbatim so answers can never be mis-matched across a
restart (a fresh worker starts a fresh pipe).  ``deadline_s`` is the
request's *remaining* budget at dispatch time — the supervisor already
charged queue wait against it — enforced here with a local
:class:`~repro.resilience.Deadline` on the real monotonic clock.

When the pool serves live mutations the spec also carries ``wal`` (the
supervisor's mutation-log path), ``epoch`` (the pool epoch at spawn
time), and the clustering parameters.  The worker opens the log
*read-only*, replays it into an apply-only
:class:`~repro.live.LiveSession`, and must reach at least the spec's
epoch before the ready frame (which then carries ``"epoch"``) goes out
— a restarted or replacement worker never answers from a stale world.
After that, mutations arrive as broadcast apply frames::

    {"seq": 9, "apply": {"kind": ...}, "epoch": 42}

answered with ``{"seq": 9, "applied": 42}`` (idempotent: a frame at or
below the worker's epoch acks without re-applying; a sequence *gap*
answers ``"applied": -1`` with the error, and the supervisor restarts
the worker rather than let it drift).


With ``"backend": "csr"`` in the spec the worker freezes the loaded
workload into a :class:`~repro.network.CSRNetwork` before building its
view, serving every traversal off flat arrays (bit-identical responses;
the supervisor never combines this with a mutation log).

The spec also carries the fault plan: rule dicts
(:meth:`~repro.faults.FaultRule.to_dict`), the deterministic seed, and
``kill_real`` — which arms :data:`repro.faults.STATE.kill_real` so a
fired ``kill`` fault delivers a *real* ``SIGKILL`` to this process,
exercising the supervisor's death detection with genuine worker death
rather than a simulated one.
"""

from __future__ import annotations

import json
import os
import sys

from repro.exceptions import ParameterError
from repro.faults import FaultRule, STATE, WorkerKilled, clear, install, reseed
from repro.io import load_workload_file
from repro.network.augmented import AugmentedView
from repro.resilience.deadline import Deadline
from repro.serve.frames import read_frame, write_frame
from repro.serve.protocol import error_name
from repro.serve.service import run_query

__all__ = ["worker_entry"]


def _arm_faults(spec: dict) -> None:
    fault_spec = spec.get("faults")
    if not fault_spec:
        return
    clear()
    reseed(int(fault_spec.get("seed", 0)))
    if fault_spec.get("kill_real"):
        STATE.kill_real = True
    for rule in fault_spec.get("rules", ()):
        install(FaultRule.from_dict(rule))


def _build_view(spec: dict):
    """The workload view, its (optional) accelerator, and the index source.

    The returned source string lands in the ready frame so the supervisor
    can audit how every worker got its acceleration: ``"mmap"`` (persisted
    index mapped read-only), ``"degraded"`` (an ``index_path`` was supplied
    but failed to load — the worker serves the unaccelerated bit-identical
    path and ``perf.index.degraded`` was bumped), ``"built"`` (landmark
    Dijkstras ran in-process), or ``"none"``.

    When ``index_path`` is set the worker *never* builds a landmark index
    from scratch: the whole point of the persisted artifact is that one
    offline build is shared by every process, including restarts, so a bad
    artifact degrades rather than silently re-paying N build costs.
    """
    network, points = load_workload_file(spec["workload"])
    if spec.get("backend") == "csr":
        # Freeze once at startup (also on every restart): the worker then
        # serves off the flat arrays, and the landmark paths below — mmap
        # load, in-process build — run against the frozen kernels.  The
        # supervisor refuses csr + wal, so no mutation can stale this.
        from repro.network.csr import CSRNetwork

        network = CSRNetwork.freeze(network)
    aug = AugmentedView(network, points)
    accel = None
    landmarks = int(spec.get("landmarks", 0))
    cache_mb = float(spec.get("distance_cache_mb", 0.0))
    index_path = spec.get("index_path")
    if index_path:
        from repro.perf import DistanceAccelerator, load_index_or_degrade

        index, reason = load_index_or_degrade(index_path, network)
        if index is not None:
            accel = DistanceAccelerator(
                aug, landmarks=0, cache_mb=cache_mb, index=index
            )
            return aug, accel, "mmap"
        print(f"landmark index degraded: {reason}", file=sys.stderr)
        if cache_mb > 0:
            accel = DistanceAccelerator(aug, landmarks=0, cache_mb=cache_mb)
        return aug, accel, "degraded"
    if landmarks > 0 or cache_mb > 0:
        from repro.perf import DistanceAccelerator

        accel = DistanceAccelerator(aug, landmarks=landmarks, cache_mb=cache_mb)
        return aug, accel, "built" if landmarks > 0 else "none"
    return aug, accel, "none"


def _build_session(spec: dict, aug, accel):
    """The worker's apply-only live session, replayed from the WAL.

    Opens the supervisor's mutation log read-only, replays *every*
    acknowledged record (the log never runs ahead of the pool epoch —
    the supervisor is the single writer and fsyncs before advancing),
    and refuses to come up stale: if the log cannot reach the epoch
    pinned in the spec the :class:`~repro.exceptions.ReplayError`
    propagates, the process exits nonzero, and the supervisor's
    failed-ready path takes over.  The log is closed after replay —
    later mutations arrive as broadcast apply frames, and idempotent
    :meth:`~repro.live.LiveSession.apply` absorbs any overlap between
    what was replayed and what the supervisor re-sends as catch-up.
    """
    from repro.exceptions import ReplayError
    from repro.live import LiveSession, WriteAheadLog

    wal = WriteAheadLog(spec["wal"], read_only=True)
    session = LiveSession(
        aug.network,
        aug.points,
        eps=float(spec.get("live_eps", 1.0)),
        min_sup=int(spec.get("live_min_sup", 1)),
        wal=wal,
    )
    session.attach(aug, accel)

    def _degrade_on_reweigh(u: int, v: int) -> None:
        # Landmark node tables bind to edge weights: after a reweigh the
        # index must not serve bounds.  A persisted artifact is re-checked
        # through the honest fingerprint path (the reweigh changed the
        # network fingerprint, so it degrades and bumps
        # ``perf.index.degraded``); either way the worker drops — never
        # silently rebuilds — its bounds machinery and keeps serving the
        # plain bit-identical primitives.
        if accel is None or accel.index is None:
            return
        index = accel.index
        index_path = spec.get("index_path")
        if index_path:
            from repro.perf import load_index_or_degrade

            reloaded, reason = load_index_or_degrade(index_path, aug.network)
            if reloaded is not None:  # pragma: no cover - fingerprint changed
                reloaded.close()
            print(
                "landmark index degraded: "
                f"{reason or f'edge ({u}, {v}) reweighed under the index'}",
                file=sys.stderr,
            )
        accel.degrade_index()
        if hasattr(index, "close"):
            index.close()

    # Registered *before* replay: _build_view fingerprint-checked the
    # artifact against the pre-replay network, so a reweigh_edge record
    # already in the log must degrade the index exactly as a live one
    # would — otherwise a restarted or replacement worker serves landmark
    # bounds bound to stale edge weights.
    session.add_reweigh_hook(_degrade_on_reweigh)
    session.replay_wal()
    target = int(spec.get("epoch", 0))
    if session.epoch < target:
        raise ReplayError(
            f"mutation log replayed to epoch {session.epoch}, cannot "
            f"reach the pool epoch {target}"
        )
    wal.close()
    session.wal = None
    return session


def _apply_frame(doc: dict, session) -> dict:
    """Apply one broadcast mutation; always answers with ``"applied"``.

    ``applied`` is the worker's epoch after the frame — the supervisor's
    lag telemetry — or ``-1`` with the error when the frame cannot be
    applied (a sequence gap means a broadcast was lost and this worker
    must be restarted, not allowed to drift).  A ``WorkerKilled`` from
    the ``live.apply`` fault site propagates: the worker dies without
    answering, exactly like a real mid-apply SIGKILL, and replay of the
    durable log makes the restarted worker whole.
    """
    seq = doc.get("seq")
    if session is None:
        return {
            "seq": seq,
            "applied": -1,
            "error": "BadRequest",
            "message": "worker has no live session for apply frames",
        }
    try:
        # Catch-up frames are flagged ``replay``: they re-deliver records
        # already durable in the log, so the ``live.apply`` chaos site
        # must not fire for them (mirroring WAL replay) — otherwise a
        # kill-mid-apply plan would re-kill every restarted worker during
        # its catch-up and no restart could ever succeed.
        session.apply(
            int(doc.get("epoch")), doc["apply"],
            replaying=bool(doc.get("replay")),
        )
    except Exception as exc:
        return {
            "seq": seq,
            "applied": -1,
            "error": error_name(exc),
            "message": str(exc),
        }
    return {"seq": seq, "applied": session.epoch}


def _run_request(request: dict, aug, accel, session):
    op = request.get("op")
    if op in ("mutate", "subscribe_epoch"):
        # Centralised ops: the supervisor owns the log and the epoch
        # waiters; dispatching them here is a routing bug upstream.
        raise ParameterError(f"op {op!r} is answered by the supervisor")
    if op == "snapshot":
        if session is None:
            raise ParameterError(
                "op 'snapshot' requires live mutations — start the pool "
                "with a --wal mutation log"
            )
        return session.snapshot()
    return run_query(request, aug, accel=accel)


def _serve_one(doc: dict, aug, accel, session=None) -> dict:
    seq = doc.get("seq")
    if doc.get("ping"):
        return {"seq": seq, "pong": True, "pid": os.getpid()}
    if "apply" in doc:
        return _apply_frame(doc, session)
    request = doc.get("request")
    if not isinstance(request, dict):
        return {
            "seq": seq,
            "ok": False,
            "error": "BadRequest",
            "message": f"malformed worker frame: {doc!r}",
        }
    deadline_s = doc.get("deadline_s")
    try:
        if deadline_s is not None:
            deadline = Deadline(float(deadline_s))
            with deadline.activate():
                deadline.check("serve.worker.dispatch")
                result = _run_request(request, aug, accel, session)
        else:
            result = _run_request(request, aug, accel, session)
    except Exception as exc:
        return {
            "seq": seq,
            "ok": False,
            "error": error_name(exc),
            "message": str(exc),
        }
    return {"seq": seq, "ok": True, "result": result}


def worker_entry(spec: dict, stdin=None, stdout=None) -> int:
    """Run the worker loop until the supervisor closes the pipe.

    Returns the intended process exit code.  Kept importable (pipes are
    injectable) so tests can drive a worker in-process without forking.
    """
    in_fh = stdin if stdin is not None else sys.stdin.buffer
    out_fh = stdout if stdout is not None else sys.stdout.buffer
    _arm_faults(spec)
    aug, accel, index_source = _build_view(spec)
    session = _build_session(spec, aug, accel) if spec.get("wal") else None
    if (
        index_source == "mmap"
        and accel is not None
        and accel.index is None
    ):
        # A reweigh replayed from the mutation log degraded the mapped
        # index before the ready frame went out; report it honestly so
        # the supervisor's index_sources audit trail reflects what this
        # worker actually serves with.
        index_source = "degraded"
    # Ready handshake: the supervisor waits for this frame, so a worker
    # that dies during workload load is detected before it is dispatched
    # any request.  ``index`` reports where the acceleration state came
    # from ("mmap" / "degraded" / "built" / "none") — the supervisor logs
    # it, and the zero-rebuild tests assert on it.  With a live session
    # the frame also carries the replayed ``epoch``: the supervisor
    # catches the worker up to the pool epoch before dispatching to it.
    ready = {"ready": True, "pid": os.getpid(), "index": index_source}
    if session is not None:
        ready["epoch"] = session.epoch
    write_frame(out_fh, ready)
    while True:
        doc = read_frame(in_fh)
        if doc is None:  # supervisor closed the pipe: clean retirement
            return 0
        try:
            answer = _serve_one(doc, aug, accel, session)
        except WorkerKilled:
            # Simulated kill (kill_real unarmed): die like SIGKILL would,
            # without flushing an answer — the supervisor must see EOF.
            os._exit(137)
        try:
            write_frame(out_fh, answer)
        except (OSError, ValueError):
            return 0  # supervisor is gone; nothing left to serve
    return 0


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.serve.worker '<spec-json>'",
              file=sys.stderr)
        return 2
    spec = json.loads(args[0])
    return worker_entry(spec)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
