"""Line-delimited JSON request/response protocol for the query service.

One request per line, one response per line, matched by the caller-chosen
``id``.  Requests are plain JSON objects::

    {"id": "r1", "op": "range", "point_id": 3, "eps": 2.0, "timeout_ms": 50}
    {"id": "r2", "op": "knn", "point_id": 3, "k": 5}
    {"id": "r3", "op": "cluster", "algorithm": "eps-link", "eps": 1.0}
    {"id": "r4", "op": "stats"}
    {"id": "r5", "op": "mutate",
     "mutation": {"kind": "insert_point", "u": 1, "v": 2, "offset": 0.5}}
    {"id": "r6", "op": "subscribe_epoch", "from_epoch": 41}
    {"id": "r7", "op": "snapshot"}

``op`` selects the work: ``range`` / ``knn`` anchor at an existing object
(``point_id``) of the served workload; ``cluster`` runs one of the paper's
algorithms over the whole workload (same parameter names as the CLI:
``eps``, ``k``, ``min_pts``, ``delta``, ``seed``, ``restarts``); ``stats``
returns the service's live telemetry snapshot — uptime, the ``serve.*``
counters, latency histograms with p50/p90/p99, and the queue-depth /
worker / breaker-state / cache-hit-ratio gauges (see
``docs/observability.md`` for the schema).

The three live ops require the service to have been started with a
mutation log (``repro serve --wal``) and otherwise fail with
``BadRequest``: ``mutate`` applies one typed mutation (``insert_point`` /
``remove_point`` / ``reweigh_edge`` — schema in ``docs/robustness.md``)
and answers ``{"epoch": n, ...}`` only after the write-ahead-log fsync;
``subscribe_epoch`` blocks until the served epoch exceeds ``from_epoch``
(bounded by the request deadline); ``snapshot`` returns the epoch and the
full maintained cluster assignment.
``timeout_ms`` overrides the service's default per-request deadline
(measured from *admission*, so queue wait counts against it).
Any request may also carry ``"trace": true`` to opt into request-scoped
tracing when the service has a trace file configured: that one request's
span tree is recorded, stamped with its ``request_id``.

Responses carry either a result or a typed error from the taxonomy in
``docs/resilience.md``::

    {"id": "r1", "ok": true, "result": [[7, 0.4], [2, 1.1]]}
    {"id": "r3", "ok": false, "error": "DeadlineExceeded", "message": "..."}

:func:`error_name` is the single mapping from Python exceptions to wire
error names, so the chaos tests and the CLI agree on the taxonomy.
"""

from __future__ import annotations

import json

from repro.exceptions import (
    BudgetExceededError,
    Cancelled,
    CircuitOpenError,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
    ReproError,
    StorageError,
)

__all__ = [
    "OPS",
    "error_name",
    "error_response",
    "parse_request",
    "result_response",
]

OPS = ("range", "knn", "cluster", "stats", "mutate", "subscribe_epoch",
       "snapshot")


def parse_request(line: str, lineno: int = 0) -> dict:
    """Decode one request line, raising :class:`ParameterError` on garbage."""
    where = f"request line {lineno}" if lineno else "request"
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ParameterError(f"{where}: invalid JSON ({exc})") from None
    if not isinstance(doc, dict):
        raise ParameterError(f"{where}: expected a JSON object")
    op = doc.get("op")
    if op not in OPS:
        raise ParameterError(
            f"{where}: op must be one of {list(OPS)}, got {op!r}"
        )
    timeout_ms = doc.get("timeout_ms")
    if timeout_ms is not None and (
        isinstance(timeout_ms, bool)
        or not isinstance(timeout_ms, (int, float))
        or timeout_ms != timeout_ms  # NaN
        or timeout_ms < 0
    ):
        raise ParameterError(
            f"{where}: timeout_ms must be a number >= 0, got {timeout_ms!r}"
        )
    return doc


def error_name(exc: BaseException) -> str:
    """Wire name of an exception: the service's error taxonomy."""
    # Errors that already crossed a worker pipe carry their original wire
    # name; honouring it keeps the taxonomy transport-invariant (a
    # BadRequest inside a worker process is still a BadRequest here).
    wire_name = getattr(exc, "wire_name", None)
    if wire_name is not None:
        return wire_name
    if isinstance(exc, DeadlineExceeded):
        return "DeadlineExceeded"
    if isinstance(exc, Cancelled):
        return "Cancelled"
    if isinstance(exc, Overloaded):
        return "Overloaded"
    if isinstance(exc, CircuitOpenError):
        return "CircuitOpen"
    if isinstance(exc, BudgetExceededError):
        return "BudgetExceeded"
    # Only ParameterError maps to BadRequest: the service wraps every
    # request-field extraction/conversion failure in it, so a bare
    # KeyError/TypeError/ValueError can only be an internal bug and must
    # not be blamed on the client's request.
    if isinstance(exc, ParameterError):
        return "BadRequest"
    if isinstance(exc, StorageError):
        return "StorageError"
    if isinstance(exc, OSError):
        return "IOError"
    if isinstance(exc, ReproError):
        return type(exc).__name__
    return "InternalError"


def result_response(request: dict, result: object) -> dict:
    out = {"ok": True, "result": result}
    if "id" in request:
        out["id"] = request["id"]
    return out


def error_response(request: dict, exc: BaseException) -> dict:
    out = {"ok": False, "error": error_name(exc), "message": str(exc)}
    if isinstance(request, dict) and "id" in request:
        out["id"] = request["id"]
    return out
