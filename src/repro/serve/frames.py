"""Length-prefixed JSON framing for the supervised worker pipes.

The supervisor and its worker processes speak frames over byte pipes
(the worker's stdin/stdout): a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON.  The framing is deliberately primitive —
no pickling, no versioned envelope — because the failure model demands it:
a worker can be SIGKILLed *mid-write*, and the reader must classify every
possible prefix of a valid stream as either a complete frame or a death,
never as garbage data.

:func:`read_frame` therefore returns ``None`` for every flavour of dead
peer — clean EOF, a torn length prefix, a torn payload, or a payload that
does not decode — instead of raising.  A ``None`` from the supervisor's
reader thread *is* the death signal that triggers failover and restart.

Frame sizes are capped (:data:`MAX_FRAME`): a corrupt length prefix must
not make the reader attempt a multi-gigabyte allocation.
"""

from __future__ import annotations

import json
import struct
from typing import BinaryIO

__all__ = ["MAX_FRAME", "read_frame", "write_frame"]

#: Upper bound on one frame's payload; larger prefixes read as death.
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


def write_frame(fh: BinaryIO, doc: dict) -> None:
    """Write one framed JSON document and flush it.

    Raises ``OSError`` (``BrokenPipeError`` included) when the peer is
    gone — the caller treats that exactly like discovering the death via
    the read side.
    """
    payload = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ValueError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    fh.write(_LEN.pack(len(payload)) + payload)
    fh.flush()


def _read_exact(fh: BinaryIO, n: int) -> bytes | None:
    """Exactly ``n`` bytes, or ``None`` on EOF / short read / I/O error."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        try:
            chunk = fh.read(remaining)
        except (OSError, ValueError):  # ValueError: file already closed
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(fh: BinaryIO) -> dict | None:
    """Read one framed JSON document; ``None`` means the peer is dead.

    Every torn/truncated/undecodable stream state maps to ``None`` — with
    a SIGKILL-able peer there is no difference worth distinguishing
    between "closed cleanly" and "died mid-frame": either way no further
    frames are coming.
    """
    header = _read_exact(fh, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        return None
    payload = _read_exact(fh, length)
    if payload is None:
        return None
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    return doc
