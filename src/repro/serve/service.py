"""Threaded query executor with admission control and per-request deadlines.

:class:`QueryService` is the runtime the resilience layer exists for: a
worker pool answering ε-range / kNN / clustering requests over one served
workload, engineered so that load and failure stay bounded:

* **Bounded admission.**  Requests wait in a ``queue.Queue(queue_depth)``;
  when it is full, :meth:`submit` *sheds* the request with a typed
  :class:`~repro.exceptions.Overloaded` instead of queueing unboundedly —
  the caller learns immediately and can back off.
* **Per-request deadlines.**  Every request gets a
  :class:`~repro.resilience.Deadline` stamped at *admission*, so time spent
  queued counts against it; a worker activates it for the request's scope
  and the cooperative checkpoints inside the traversals enforce it.
  Requests whose deadline expired while queued are dropped at dequeue
  without doing any work.
* **Per-request isolation.**  Workers catch every ``Exception`` a request
  raises and deliver it through the request's future; a poisoned request
  (corrupt store page, injected crash, bad parameters) fails alone and the
  worker lives on.
* **Graceful drain.**  :meth:`close` stops admissions, lets queued work
  finish (or cancels it with ``drain=False``), and joins the workers.

The service composes with the rest of the robustness stack without special
cases: an installed :class:`~repro.recovery.RetryPolicy` absorbs transient
I/O blips inside requests, an installed
:class:`~repro.resilience.CircuitBreaker` converts persistent store
failures into fast :class:`~repro.exceptions.CircuitOpenError` rejections,
and ``serve.*`` obs counters expose the flow.

Live telemetry (all gated on one ``obs`` flag check per request, so the
hot path is untouched while observability is off):

* ``serve.latency`` / ``serve.queue_wait`` / ``serve.exec`` histograms —
  admission→response, admission→dequeue, and dequeue→response, measured on
  the service clock so virtual-clock tests see deterministic values;
* gauges for queue depth, live workers, in-flight requests, the installed
  circuit breaker's state, and the shared distance cache's hit ratio,
  sampled only when something reads them;
* the ``{"op": "stats"}`` wire request and :meth:`QueryService.stats_snapshot`
  return all of it plus uptime as one JSON-ready document;
* requests carrying ``"trace": true`` run inside a trace-sampled scope
  under a ``serve.request`` root span stamped with their ``request_id``,
  so a single request's full span tree lands in the trace file without
  tracing the whole service (``obs.enable(sample_requests=True)``).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable

from repro.exceptions import (
    Cancelled,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
    PointNotFoundError,
)
from repro.network.augmented import AugmentedView
from repro.network.queries import knn_query, range_query
from repro.obs.core import STATE as _OBS
from repro.obs.core import add as _obs_add
from repro.obs.core import sampled as _obs_sampled
from repro.obs.core import span as _obs_span
from repro.obs.metrics import REGISTRY as _METRICS
from repro.resilience.breaker import installed_state_code as _breaker_state
from repro.resilience.deadline import Deadline
from repro.serve.protocol import OPS

#: Wire ops that require a live-mutation session (``repro serve --wal``).
LIVE_OPS = frozenset({"mutate", "subscribe_epoch", "snapshot"})

__all__ = ["LIVE_OPS", "QueryService", "build_algorithm", "run_query"]

_STOP = object()
_UNSET = object()

#: fallback request ids for traced requests that carry no client ``id``
_REQUEST_IDS = itertools.count(1)


def _field(request: dict, key: str, conv: Callable):
    """Extract + convert one request field, mapping any failure — missing
    key, wrong type, unconvertible value — to :class:`ParameterError` so it
    reaches the wire as ``BadRequest`` rather than an internal error."""
    if key not in request:
        raise ParameterError(f"missing required field {key!r}")
    try:
        return conv(request[key])
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"field {key!r}: {exc}") from None


def build_algorithm(spec: dict, network, points):
    """A clustering algorithm from a ``cluster`` request's parameters.

    Mirrors the CLI's ``--algorithm`` flags with the same defaults; raises
    :class:`ParameterError` (wire name ``BadRequest``) on unknown names,
    missing required parameters, or unconvertible parameter values.
    """
    try:
        return _build_algorithm(spec, network, points)
    except ParameterError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        # Construction only touches request fields; a conversion failure
        # here is the client's malformed request, not an internal bug.
        raise ParameterError(f"cluster request: {exc}") from None


def _build_algorithm(spec: dict, network, points):
    from repro.core import (
        EpsLink,
        NetworkDBSCAN,
        NetworkKMedoids,
        NetworkOPTICS,
        SingleLink,
    )

    name = spec.get("algorithm")
    if name in ("eps-link", "dbscan", "optics") and spec.get("eps") is None:
        raise ParameterError(f"algorithm {name!r} requires eps")
    if name == "k-medoids":
        return NetworkKMedoids(
            network, points, k=int(spec.get("k", 10)),
            seed=int(spec.get("seed", 0)),
            n_restarts=int(spec.get("restarts", 1)),
        )
    if name == "eps-link":
        return EpsLink(network, points, eps=float(spec["eps"]),
                       min_sup=int(spec.get("min_pts", 2)))
    if name == "dbscan":
        return NetworkDBSCAN(network, points, eps=float(spec["eps"]),
                             min_pts=int(spec.get("min_pts", 2)))
    if name == "optics":
        return NetworkOPTICS(network, points, max_eps=float(spec["eps"]),
                             min_pts=int(spec.get("min_pts", 2)))
    if name == "single-link":
        stop_k = spec.get("k")
        return SingleLink(network, points,
                          delta=float(spec.get("delta", 0.0)),
                          stop_k=int(stop_k) if stop_k is not None else None,
                          stop_distance=spec.get("stop_distance"))
    raise ParameterError(f"unknown algorithm {name!r}")


def _request_point(request: dict, points):
    """The anchor point of a range/knn request, as :class:`ParameterError`
    (wire ``BadRequest``) when the id is missing, unconvertible, or absent
    from the served point set."""
    point_id = _field(request, "point_id", int)
    try:
        return points.get(point_id)
    except PointNotFoundError:
        raise ParameterError(f"unknown point_id {point_id}") from None


def run_query(request: dict, aug: AugmentedView, *, accel=None):
    """Execute one ``range`` / ``knn`` / ``cluster`` request over ``aug``.

    The single execution path shared by the threaded
    :class:`QueryService` workers and the supervised pool's worker
    *processes* — sharing it is what makes the multi-process tier's
    results bit-identical to the threaded oracle by construction.  The
    ``stats`` op is not handled here: it reads service-local telemetry,
    so each tier answers it from its own state.
    """
    op = request.get("op")
    if op == "range":
        point = _request_point(request, aug.points)
        eps = _field(request, "eps", float)
        if accel is not None:
            hits = accel.range_query(point, eps)
        else:
            hits = range_query(aug, point, eps)
        return [[p.point_id, d] for p, d in hits]
    if op == "knn":
        point = _request_point(request, aug.points)
        k = _field(request, "k", int)
        if accel is not None:
            hits = accel.knn_query(point, k)
        else:
            hits = knn_query(aug, point, k)
        return [[p.point_id, d] for p, d in hits]
    if op == "cluster":
        result = build_algorithm(request, aug.network, aug.points).run()
        return {
            "algorithm": result.algorithm,
            "num_clusters": result.num_clusters,
            "outliers": len(result.outliers()),
            "assignment": {str(k): v for k, v in result.assignment.items()},
        }
    raise ParameterError(f"op must be one of {list(OPS)}, got {op!r}")


class QueryService:
    """A bounded worker pool answering queries over one workload.

    Parameters
    ----------
    network / points:
        The served workload; any traversal-protocol backend works, so a
        disk-backed :class:`~repro.storage.NetworkStore` with its
        :class:`~repro.storage.StoredPointSet` serves as well as the
        in-memory pair.
    workers:
        Worker threads; each holds its own :class:`AugmentedView` so the
        lazily built edge indexes are never shared hot.
    queue_depth:
        Admission-queue bound; a full queue sheds with
        :class:`~repro.exceptions.Overloaded`.
    default_timeout_s:
        Per-request deadline applied when a request does not carry its own
        (``None`` disables).
    clock:
        Monotonic clock used for every request deadline; tests inject a
        :class:`~repro.resilience.VirtualClock` for determinism.
    landmarks / distance_cache_mb:
        Distance acceleration (both default off).  ``landmarks`` builds one
        shared :class:`~repro.perf.LandmarkIndex` (range/kNN expansions
        prune against its bounds); ``distance_cache_mb`` allocates one
        shared :class:`~repro.perf.DistanceCache` so repeated queries are
        answered from memory across all workers.  Results are bit-identical
        either way; with both at zero the request path runs the plain,
        uninstrumented primitives.
    index_path:
        Path to a persisted landmark index (``repro index build``), mapped
        read-only instead of running the landmark Dijkstras at startup.
        Overrides ``landmarks``: with an artifact supplied the service
        never builds an index in-process.  A missing, corrupt, stale, or
        version-skewed artifact *degrades* — the service starts and serves
        the unaccelerated bit-identical path, ``perf.index.degraded`` is
        bumped, and :attr:`index_source` reads ``"degraded"`` (with the
        cause in :attr:`index_degrade_reason`) — it never refuses to
        serve.
    session:
        A :class:`~repro.live.LiveSession` enabling the ``mutate`` /
        ``subscribe_epoch`` / ``snapshot`` wire ops.  Queries and
        mutations are then serialized on the session lock (the threaded
        tier trades mutation-window parallelism for a consistent world;
        the supervised pool keeps full parallelism because each worker
        process applies between requests).  ``subscribe_epoch`` is
        answered on a dedicated waiter thread, never a pool worker, so
        parked subscribers cannot starve the mutate that would wake
        them.  A reweigh degrades the
        landmark acceleration through the session's reweigh hook — the
        fingerprint-checked ``load_index_or_degrade`` path for a
        persisted artifact — never a silent rebuild.
    backend:
        ``None``/``"dict"`` serve the network as given;  ``"csr"``
        freezes it once into a :class:`~repro.network.CSRNetwork` before
        the workers start, so every worker traverses the shared frozen
        arrays.  Responses are bit-identical either way.  Incompatible
        with ``session`` (live mutations would stale the snapshot).
    """

    def __init__(
        self,
        network,
        points,
        *,
        workers: int = 2,
        queue_depth: int = 8,
        default_timeout_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        landmarks: int = 0,
        distance_cache_mb: float = 0.0,
        index_path: str | None = None,
        session=None,
        backend: str | None = None,
    ) -> None:
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ParameterError(f"queue_depth must be >= 1, got {queue_depth}")
        if landmarks < 0:
            raise ParameterError(f"landmarks must be >= 0, got {landmarks}")
        if distance_cache_mb < 0:
            raise ParameterError(
                f"distance_cache_mb must be >= 0, got {distance_cache_mb}"
            )
        if backend not in (None, "dict", "csr"):
            raise ParameterError(
                f"unknown network backend {backend!r} (expected 'dict' or 'csr')"
            )
        if backend == "csr":
            if session is not None:
                # Live mutations rewrite the network under the service; a
                # frozen snapshot would go stale on the first reweigh, so
                # the combination is refused up front rather than failing
                # mid-serve with StaleBackendError.
                raise ParameterError(
                    "backend='csr' cannot serve live mutations; "
                    "use the dict backend with a session"
                )
            from repro.network.csr import CSRNetwork

            # Freeze once, before the workers start: every worker thread's
            # AugmentedView then traverses the same shared arrays, and the
            # landmark build below reuses the frozen kernels.
            network = CSRNetwork.freeze(network)
        #: ``"dict"`` or ``"csr"`` — which traversal backend serves.
        self.backend = "csr" if backend == "csr" else "dict"
        self.network = network
        self.points = points
        self.default_timeout_s = default_timeout_s
        self._clock = clock
        # The shared acceleration state is built *before* the workers
        # start: they construct per-worker accelerators from it in their
        # own threads, and the landmark Dijkstras must not race admission.
        self._landmark_index = None
        self._distance_cache = None
        self._accelerated = landmarks > 0 or distance_cache_mb > 0
        #: "mmap" / "degraded" / "built" / "none" — where the landmark
        #: acceleration state came from (mirrors the worker-process ready
        #: frames, so both tiers audit identically).
        self.index_source = "none"
        self.index_degrade_reason: str | None = None
        if index_path is not None:
            # A supplied artifact replaces the in-process build outright:
            # loading it costs one checksummed read, and when it cannot be
            # trusted the service degrades rather than silently re-paying
            # the landmark Dijkstras it exists to avoid.
            from repro.perf import load_index_or_degrade

            index, reason = load_index_or_degrade(index_path, network)
            if index is not None:
                self._landmark_index = index
                self._accelerated = True
                self.index_source = "mmap"
            else:
                self._accelerated = distance_cache_mb > 0
                self.index_source = "degraded"
                self.index_degrade_reason = reason
        elif landmarks > 0:
            from repro.perf import LandmarkIndex

            self._landmark_index = LandmarkIndex(network, landmarks)
            self.index_source = "built"
        if distance_cache_mb > 0:
            from repro.perf import DistanceCache

            self._distance_cache = DistanceCache(distance_cache_mb)
        self._session = session
        self._index_path = index_path
        # Bumped when the shared acceleration state changes (a reweigh
        # degrading the landmark index); worker threads compare their
        # per-thread generation against it and rebuild their accelerator.
        self._accel_gen = 0
        if session is not None:
            session.add_reweigh_hook(self._on_reweigh)
        self._worker_state = threading.local()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._closed = False
        self._close_lock = threading.Lock()
        self._started_at = clock()
        self._inflight = 0
        # Shared instruments, created once so the per-request path does a
        # single flag check plus direct observe() calls — no dict lookups.
        self._h_latency = _METRICS.histogram("serve.latency")
        self._h_queue_wait = _METRICS.histogram("serve.queue_wait")
        self._h_exec = _METRICS.histogram("serve.exec")
        # Gauges are sampled only when read (stats op / exporter), so
        # registering them costs the request path nothing.  Kept for
        # unregistration on close: a later service re-registering the same
        # names takes them over, and close() only removes its own.
        self._gauges = [
            _METRICS.gauge("serve.queue_depth", self._queue.qsize),
            _METRICS.gauge(
                "serve.workers_live",
                lambda: sum(t.is_alive() for t in self._threads),
            ),
            _METRICS.gauge("serve.inflight", lambda: self._inflight),
            _METRICS.gauge("breaker.state", _breaker_state),
        ]
        if self._distance_cache is not None:
            self._gauges.append(
                _METRICS.gauge(
                    "perf.cache.hit_ratio", self._distance_cache.hit_ratio
                )
            )
        if session is not None:
            self._gauges.append(
                _METRICS.gauge("serve.epoch", lambda: self._session.epoch)
            )
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-serve-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- client side -----------------------------------------------------

    def submit(self, request: dict, timeout_s: object = _UNSET) -> Future:
        """Admit a request; returns its future or raises ``Overloaded``.

        The request's deadline starts *now*: queue wait is part of the
        budget the caller granted.  A malformed ``timeout_ms`` raises
        :class:`ParameterError` (wire name ``BadRequest``), never a bare
        conversion error.
        """
        if timeout_s is _UNSET:
            timeout_s = self._request_timeout_s(request)
        if request.get("op") == "subscribe_epoch" and self._session is not None:
            # Answered off the worker pool on a dedicated waiter thread
            # (mirroring SupervisedPool): a no-deadline subscriber would
            # otherwise park a pool thread in a condition wait, and
            # enough of them starve out the very mutate that would wake
            # them — permanent deadlock.
            with self._close_lock:
                if self._closed:
                    raise RuntimeError("QueryService is closed")
            future: Future = Future()
            self._subscribe_epoch(request, timeout_s, future)
            _obs_add("serve.submitted")
            return future
        deadline = Deadline(timeout_s, clock=self._clock)
        future: Future = Future()
        # One flag check: with observability off no clock is read and the
        # queue item carries None, so the worker skips all histogram work.
        admitted_at = self._clock() if _OBS.enabled else None
        # The closed check and the enqueue are one atomic step against
        # close(): otherwise a request could slip into the queue after
        # close() drained it and enqueued the stop sentinels, leaving its
        # future unresolved forever.
        with self._close_lock:
            if self._closed:
                raise RuntimeError("QueryService is closed")
            try:
                self._queue.put_nowait((request, deadline, future, admitted_at))
            except queue.Full:
                _obs_add("serve.shed")
                raise Overloaded(self._queue.maxsize) from None
        _obs_add("serve.submitted")
        return future

    def _request_timeout_s(self, request: dict) -> float | None:
        raw = request.get("timeout_ms")
        if raw is None:
            return self.default_timeout_s
        if (
            isinstance(raw, bool)
            or not isinstance(raw, (int, float))
            or raw != raw  # NaN
            or raw < 0
        ):
            raise ParameterError(
                f"timeout_ms must be a number >= 0, got {raw!r}"
            )
        return float(raw) / 1000.0

    def call(self, request: dict, timeout_s: object = _UNSET) -> object:
        """Blocking convenience wrapper: submit and wait for the result."""
        return self.submit(request, timeout_s).result()

    # -- worker side -----------------------------------------------------

    def _ensure_accel(self, aug: AugmentedView):
        """The calling thread's accelerator, rebuilt on generation bumps.

        Per-worker facade over the shared index/cache: the view and the
        vector memo stay thread-local, the expensive state is shared warm
        across the pool.  When a reweigh degrades the shared index
        (:meth:`_on_reweigh` bumps :attr:`_accel_gen`), each thread
        rebuilds its facade lazily on its next request — no coordination
        on the hot path beyond one integer comparison.
        """
        state = self._worker_state
        if getattr(state, "accel_gen", None) == self._accel_gen:
            return state.accel
        accel = None
        if self._accelerated:
            from repro.perf import DistanceAccelerator

            accel = DistanceAccelerator(
                aug,
                landmarks=0,
                cache_mb=0.0,
                index=self._landmark_index,
                cache=self._distance_cache,
            )
        state.accel = accel
        state.accel_gen = self._accel_gen
        attachment = getattr(state, "attachment", None)
        if attachment is not None:
            attachment.accel = accel
        return accel

    def _on_reweigh(self, u: int, v: int) -> None:
        """Session reweigh hook: the landmark index binds to edge weights,
        so it must not serve bounds over the reweighed network.

        A persisted artifact is re-checked through the one honest path —
        :func:`repro.perf.load_index_or_degrade` against the *current*
        network, whose fingerprint the reweigh changed — and degrades; an
        in-process build degrades directly.  Never a silent rebuild: the
        operator rebuilds with ``repro index build`` when they choose to.
        Runs under the session lock, with queries serialized out.
        """
        if self._landmark_index is None:
            return
        if self._index_path is not None:
            from repro.perf import load_index_or_degrade

            index, reason = load_index_or_degrade(
                self._index_path, self.network
            )
            if index is not None:  # pragma: no cover - fingerprint changed
                index.close()
            self.index_degrade_reason = reason or (
                "network reweighed under the mapped index"
            )
            old = self._landmark_index
            if hasattr(old, "close"):
                old.close()
        else:
            self.index_degrade_reason = (
                f"edge ({u}, {v}) reweighed under the built index"
            )
        self._landmark_index = None
        self._accelerated = self._distance_cache is not None
        self.index_source = "degraded"
        self._accel_gen += 1

    def _worker(self) -> None:
        aug = AugmentedView(self.network, self.points)
        if self._session is not None:
            self._worker_state.attachment = self._session.attach(aug)
        self._ensure_accel(aug)
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            request, deadline, future, admitted_at = item
            if not future.set_running_or_notify_cancel():
                continue
            exec_start = None
            if admitted_at is not None:
                exec_start = self._clock()
                self._h_queue_wait.observe(exec_start - admitted_at)
            self._inflight += 1
            try:
                with deadline.activate():
                    # Sheds requests that aged out while queued before any
                    # work happens on their behalf.
                    deadline.check("serve.dequeue")
                    if request.get("trace") and (
                        _OBS.enabled or _OBS.sampling
                    ):
                        result = self._execute_traced(request, aug)
                    else:
                        result = self._execute(request, aug)
            except Exception as exc:
                # Per-request isolation: whatever a request raises —
                # injected crash, corrupt page, bad parameters — is its
                # own failure; the worker and its siblings live on.
                _obs_add("serve.errors")
                if isinstance(exc, DeadlineExceeded):
                    _obs_add("serve.deadline_exceeded")
                future.set_exception(exc)
            else:
                _obs_add("serve.completed")
                future.set_result(result)
            finally:
                self._inflight -= 1
            if exec_start is not None:
                done = self._clock()
                self._h_exec.observe(done - exec_start)
                self._h_latency.observe(done - admitted_at)

    def _execute_traced(self, request: dict, aug: AugmentedView) -> object:
        """Run one request inside a trace-sampled ``serve.request`` root
        span stamped with its request id, so its whole span tree lands in
        the trace file even when only sampled requests are being traced."""
        request_id = request.get("id")
        if request_id is None:
            request_id = f"req-{next(_REQUEST_IDS)}"
        with _obs_sampled(), _obs_span(
            "serve.request", request_id=request_id, op=request.get("op")
        ):
            return self._execute(request, aug)

    def _execute(self, request: dict, aug: AugmentedView) -> object:
        # ``stats`` reads *this* service's telemetry, so it is answered
        # here; everything else runs through the shared module-level
        # executor — the same code path the supervised pool's worker
        # processes run, which is what keeps the two tiers bit-identical.
        op = request.get("op")
        if op == "stats":
            return self.stats_snapshot()
        session = self._session
        if session is None:
            if op in LIVE_OPS:
                raise ParameterError(
                    f"op {op!r} requires live mutations — start the "
                    "service with a --wal mutation log"
                )
            return run_query(request, aug, accel=self._ensure_accel(aug))
        if op == "mutate":
            return session.mutate(request.get("mutation"))
        if op == "snapshot":
            return session.snapshot()
        # Queries run under the session lock: a mutation in another
        # worker thread must not change the world mid-traversal.
        with session.lock:
            return run_query(request, aug, accel=self._ensure_accel(aug))

    def _subscribe_epoch(self, request: dict, timeout_s, future) -> None:
        """Park one ``subscribe_epoch`` on its own daemon thread.

        The waiter resolves the future itself — success, typed error, or
        :class:`~repro.exceptions.Cancelled` when :meth:`close` shuts the
        session down — so the worker pool never blocks on an epoch that
        only a queued mutate could produce.
        """
        session = self._session

        def _wait() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                from_epoch = request.get("from_epoch", 0)
                if isinstance(from_epoch, bool) or not isinstance(
                    from_epoch, int
                ):
                    raise ParameterError(
                        f"from_epoch must be an integer, got {from_epoch!r}"
                    )
                result = session.wait_for_epoch(
                    from_epoch, timeout_s=timeout_s
                )
            except Exception as exc:
                _obs_add("serve.errors")
                if isinstance(exc, DeadlineExceeded):
                    _obs_add("serve.deadline_exceeded")
                future.set_exception(exc)
            else:
                _obs_add("serve.completed")
                future.set_result(result)

        threading.Thread(
            target=_wait, name="repro-serve-subscribe", daemon=True
        ).start()

    def stats_snapshot(self) -> dict:
        """The live telemetry document served by the ``stats`` wire op.

        JSON-ready: uptime on the service clock, the obs counters, every
        histogram (buckets plus exact count/sum and p50/p90/p99), and the
        gauges sampled now.  Works regardless of whether obs is enabled —
        with it off the counters are empty and the histograms all-zero.
        """
        from repro.obs.report import snapshot as _obs_snapshot

        metrics = _METRICS.snapshot()
        doc = {
            "uptime_s": max(self._clock() - self._started_at, 0.0),
            "counters": _obs_snapshot()["counters"],
            "histograms": metrics["histograms"],
            "gauges": metrics["gauges"],
        }
        if self._session is not None:
            doc.update(self._session.stats())
        return doc

    # -- lifecycle -------------------------------------------------------

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop admissions and shut the pool down.

        ``drain=True`` (graceful) lets already-admitted requests run to
        completion; ``drain=False`` fails queued requests with
        :class:`~repro.exceptions.Cancelled` (in-flight requests still
        finish — preemption happens only at their own cooperative
        checkpoints).  Returns True when every worker exited within
        ``timeout_s``.
        """
        with self._close_lock:
            if self._closed:
                return self._joined()
            self._closed = True
        if self._session is not None:
            # Wake blocked subscribe_epoch waiters (they raise Cancelled)
            # so the drain below cannot deadlock on a worker parked in a
            # condition wait.
            self._session.shutdown()
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    _request, _deadline, future, _admitted_at = item
                    if future.set_running_or_notify_cancel():
                        future.set_exception(Cancelled("service shutdown"))
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout_s)
        # Workers that exited cleanly leave nothing behind; if any timed
        # out or died, fail whatever is still queued so no caller blocks
        # on a future nobody will ever resolve.
        stops_swept = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                stops_swept += 1
                continue
            _request, _deadline, future, _admitted_at = item
            if future.set_running_or_notify_cancel():
                future.set_exception(Cancelled("service shutdown"))
        joined = self._joined()
        if not joined:
            # Straggling workers still need their stop sentinels back so
            # they exit if they ever come unstuck (best-effort: they are
            # daemons, so a stuck pool cannot block process exit either).
            for _ in range(stops_swept):
                try:
                    self._queue.put_nowait(_STOP)
                except queue.Full:  # pragma: no cover - depth < stragglers
                    break
        # Gauges close over this service's queue and threads; leaving them
        # registered would have a later stats read sampling a dead pool.
        # Ownership-checked so a successor service that already re-registered
        # the same names is untouched.
        for gauge in self._gauges:
            _METRICS.unregister_gauge(gauge.name, owner=gauge)
        return joined

    def _joined(self) -> bool:
        return all(not t.is_alive() for t in self._threads)

    def __enter__(self) -> QueryService:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
