"""Reconstruction of typed errors that crossed a worker pipe.

A worker process answers a failed request with its taxonomy name and
message (``{"ok": false, "error": "BadRequest", "message": ...}``).  The
supervisor cannot re-raise the original exception class — the wire
carries only the name — so it raises :class:`RemoteRequestError`
instead, which *preserves the wire name*:
:func:`repro.serve.protocol.error_name` honours ``wire_name`` first, so
a ``BadRequest`` that happened inside a worker process serialises back
to the client as ``BadRequest``, not as a generic internal error.  The
taxonomy is thereby transport-invariant: threaded service and
supervised pool produce byte-identical error responses.
"""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = ["RemoteRequestError"]


class RemoteRequestError(ReproError):
    """A request failed inside a worker process with a typed wire error.

    Attributes
    ----------
    wire_name:
        The taxonomy name the worker reported (``BadRequest``,
        ``DeadlineExceeded``, ...); :func:`~repro.serve.protocol.error_name`
        passes it through unchanged.
    remote_message:
        The worker-side message, also used as this exception's message.
    """

    def __init__(self, wire_name: str, message: str) -> None:
        super().__init__(message or f"worker reported {wire_name}")
        self.wire_name = str(wire_name)
        self.remote_message = message
