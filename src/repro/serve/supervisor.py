"""Supervised multi-process worker pool for the serve tier.

:class:`SupervisedPool` is the process-level sibling of the threaded
:class:`~repro.serve.QueryService`: the same bounded-admission,
deadline-stamped request surface, but each worker is a separate OS
process (:mod:`repro.serve.worker`) that opens the served workload
itself, read-only, and speaks length-prefixed JSON frames
(:mod:`repro.serve.frames`) over its stdin/stdout.  A worker can
therefore die at *any instruction* — SIGKILL, OOM, segfault-class bug —
without corrupting anything shared, and the supervisor turns that death
into typed, bounded behaviour:

* **Death detection.**  Each slot's supervising thread blocks on the
  worker's pipe; EOF (``read_frame`` → ``None``) *is* the death signal,
  with no polling lag.  A monitor thread additionally heartbeats idle
  workers with ping frames and SIGKILLs workers that sit on one request
  past ``hang_timeout_s``, converting hangs into the same EOF path.
* **Restart with backoff, storm-circuited.**  A dead worker is restarted
  after ``min(backoff_cap_s, backoff_base_s * 2**(k-1))`` for its k-th
  consecutive failure.  Each slot gates restarts through its own
  :class:`~repro.resilience.CircuitBreaker` (``failure_threshold =
  max_restarts + 1``, ``reset_timeout_s = restart_window_s``): a slot
  whose worker keeps dying trips the breaker and *degrades* — the pool
  runs on the surviving slots, shedding overflow with the existing
  :class:`~repro.exceptions.Overloaded`.  Degradation is sticky until
  :meth:`close`; the breaker's ``breaker.*`` counters are the storm's
  audit trail, and :attr:`restart_log` records every restart's timing.
* **In-flight failover.**  A request that was on a dead worker is
  retried once on another worker when idempotent-safe (``range`` /
  ``knn`` / ``stats`` — read-only by construction); a ``cluster``
  request, or a second failure, surfaces as a typed
  :class:`~repro.exceptions.WorkerCrashed`.
* **Poison quarantine.**  Every in-flight request at a death is
  fingerprinted (canonical JSON, ``id``/``trace`` stripped).  A
  fingerprint that kills workers ``poison_threshold`` times (default 2)
  is quarantined: resolved — and thereafter rejected at submission —
  with :class:`~repro.exceptions.PoisonRequest`, so one poisonous
  request cannot cycle the whole pool through crash/restart.

* **Durable live mutations.**  With ``wal_path`` set the supervisor owns
  the pool's :class:`~repro.live.LiveSession` and its single-writer
  write-ahead log: a ``mutate`` request is conflict-checked, fsynced,
  applied to the supervisor's oracle state, and *broadcast* as an apply
  frame to every live worker — all under the session lock, so every
  worker sees mutations in epoch order, and all before the request's
  future resolves, so a query submitted after the ack is pipe-ordered
  behind the apply on whichever worker serves it.  A restarted or
  replacement worker replays the log before its ready frame (which
  carries its ``epoch``) and is caught up to the pool epoch before it is
  marked idle — failover never answers from a stale world.
  ``subscribe_epoch`` is answered from the supervisor's session;
  ``snapshot`` is dispatched to workers (and is how the convergence
  tests cross-check worker state against the oracle).

Determinism: the clock, the backoff sleep, and the worker factory are
injectable.  Chaos tests drive the pool with in-process fake workers
under a :class:`~repro.resilience.VirtualClock` (restart spacing becomes
exact arithmetic), and with real subprocesses whose ``kill``-fault plans
(:meth:`~repro.faults.FaultRule.to_dict`, shipped in the worker spec)
SIGKILL them at seeded execution sites — every worker installs the same
plan and counts hits from zero, so the k-th request a fresh worker
executes is deterministic across runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from typing import Callable

from repro.exceptions import (
    Cancelled,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
    PoisonRequest,
    WorkerCrashed,
)
from repro.obs.core import STATE as _OBS
from repro.obs.core import add as _obs_add
from repro.obs.metrics import REGISTRY as _METRICS
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.serve.frames import read_frame, write_frame

__all__ = ["ProcessWorker", "SupervisedPool"]

_STOP = object()
_UNSET = object()

#: Ops that are safe to replay on another worker after a death: read-only
#: queries whose single execution cannot have had side effects a retry
#: would double.  ``cluster`` is excluded not because it mutates (workers
#: are read-only) but because replaying a long run doubles its cost and a
#: crash mid-cluster is the poison signature worth surfacing eagerly.
#: ``snapshot`` reads the worker's maintained clustering — pure, cheap,
#: retry-safe.  ``mutate`` is deliberately absent: it is answered by the
#: supervisor itself and never rides the dispatch queue at all.
IDEMPOTENT_OPS = frozenset({"range", "knn", "stats", "snapshot"})

# Slot states.
_STARTING = "starting"
_IDLE = "idle"
_BUSY = "busy"
_DEAD = "dead"


def request_fingerprint(request: dict) -> str:
    """Canonical fingerprint of a request's *work*, for poison tracking.

    ``id`` and ``trace`` are stripped: two submissions of the same query
    under different client ids are the same poison.
    """
    work = {k: v for k, v in request.items() if k not in ("id", "trace")}
    blob = json.dumps(work, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class ProcessWorker:
    """Frame-pipe handle over one worker subprocess.

    The protocol a worker handle implements (``pid`` / ``send`` /
    ``recv`` / ``close_stdin`` / ``kill`` / ``join`` / ``alive``) is what
    the pool's ``worker_factory`` must return; chaos tests substitute
    in-process fakes with scripted death.
    """

    def __init__(self, proc: subprocess.Popen) -> None:
        self._proc = proc
        self.pid = proc.pid

    def send(self, doc: dict) -> None:
        write_frame(self._proc.stdin, doc)

    def recv(self) -> dict | None:
        return read_frame(self._proc.stdout)

    def close_stdin(self) -> None:
        try:
            self._proc.stdin.close()
        except OSError:
            pass

    def kill(self) -> None:
        try:
            self._proc.kill()
        except OSError:  # pragma: no cover - already reaped
            pass

    def join(self, timeout_s: float | None = None) -> bool:
        try:
            self._proc.wait(timeout_s)
        except subprocess.TimeoutExpired:
            return False
        return True

    def alive(self) -> bool:
        return self._proc.poll() is None


class _Item:
    """One admitted request riding through the pool."""

    __slots__ = (
        "request", "deadline", "future", "admitted_at", "retried", "seq",
        "dispatched_at", "started",
    )

    def __init__(self, request, deadline, future, admitted_at) -> None:
        self.request = request
        self.deadline = deadline
        self.future = future
        self.admitted_at = admitted_at
        self.retried = False
        self.seq = -1
        self.dispatched_at = None
        self.started = False

    def begin(self) -> bool:
        """Move the future to RUNNING exactly once (idempotent: a failover
        re-dispatch must not trip the future's one-shot state machine).
        Returns False when the client cancelled the future first."""
        if self.started:
            return True
        if not self.future.set_running_or_notify_cancel():
            return False
        self.started = True
        return True


class _Slot:
    """One supervised worker position: handle + breaker + restart state."""

    __slots__ = (
        "index", "state", "handle", "breaker", "busy", "send_lock",
        "consecutive_failures", "seq", "last_seen", "thread",
        "applied_epoch",
    )

    def __init__(self, index: int, breaker: CircuitBreaker) -> None:
        self.index = index
        self.state = _STARTING
        self.handle = None
        self.breaker = breaker
        self.busy: _Item | None = None
        self.send_lock = threading.Lock()
        self.consecutive_failures = 0
        self.seq = 0
        self.last_seen = 0.0
        self.thread: threading.Thread | None = None
        #: Epoch of the worker's last acknowledged apply frame — lag
        #: telemetry only; correctness rests on pipe FIFO ordering.
        self.applied_epoch = 0


class SupervisedPool:
    """A multi-process query pool with restart, failover, and quarantine.

    Parameters
    ----------
    workload:
        Path to the served workload JSON; every worker process opens it
        itself, read-only.
    processes / queue_depth / default_timeout_s / landmarks /
    distance_cache_mb:
        As on :class:`~repro.serve.QueryService`, but per *process*:
        each worker builds its own accelerator state.
    index_path:
        Path to a persisted landmark index (``repro index build``).
        Shipped in every worker's spec: workers mmap the artifact
        read-only instead of running landmark Dijkstras — one offline
        build shared by all processes and by every crash-restart — and
        degrade to the unaccelerated bit-identical path (bumping
        ``perf.index.degraded``) when the artifact is missing, corrupt,
        or stale.  Overrides ``landmarks``: with an artifact supplied,
        no worker ever builds an index in-process.  Each worker's ready
        frame reports its index source, collected in
        :attr:`index_sources`.
    max_restarts / restart_window_s:
        The restart-storm circuit: a slot may be restarted at most
        ``max_restarts`` times in a row before its breaker
        (``failure_threshold = max_restarts + 1``) trips and the slot
        degrades; a completed request resets the run of failures, and
        ``restart_window_s`` is the breaker's cool-down bookkeeping.
    backoff_base_s / backoff_cap_s:
        Capped exponential restart spacing for consecutive failures.
    hang_timeout_s:
        When set, a worker holding one request longer than this is
        SIGKILLed by the monitor (the death then follows the normal
        failover path).  ``None`` disables hang detection.
    monitor_interval_s:
        Heartbeat cadence of the monitor thread (pings idle workers,
        checks hangs).  The monitor only runs when ``hang_timeout_s``
        is set.
    poison_threshold:
        Worker deaths a request fingerprint may cause before quarantine.
    fault_rules / fault_seed:
        A :class:`~repro.faults.FaultRule` plan shipped to every worker
        (each installs it fresh, seeded identically, ``kill_real``
        armed) — the chaos-test lever.
    wal_path / live_eps / live_min_sup:
        ``wal_path`` enables the live-mutation ops: the supervisor opens
        (or creates) the write-ahead log there as its single writer,
        replays it into the pool's oracle :class:`~repro.live.LiveSession`
        before any worker starts, and ships the path in every worker
        spec so workers replay it read-only.  ``live_eps`` /
        ``live_min_sup`` are the maintained ε-Link clustering's
        parameters and must match across restarts of the same log.
    backend:
        ``None``/``"dict"`` serve the workload as loaded; ``"csr"`` ships
        ``backend: csr`` in every worker spec, so each worker (including
        restarts) freezes the workload into a
        :class:`~repro.network.CSRNetwork` at startup and serves off the
        frozen arrays.  Responses are bit-identical either way.
        Incompatible with ``wal_path`` (live mutations would stale the
        frozen snapshot).
    clock / sleep / worker_factory:
        Injectables for deterministic tests: the pool's monotonic clock,
        the backoff sleep, and a ``worker_factory(slot_index)`` that
        returns a worker handle (defaults to spawning
        ``python -m repro.serve.worker``).
    """

    def __init__(
        self,
        workload: str,
        *,
        processes: int = 2,
        queue_depth: int = 8,
        default_timeout_s: float | None = None,
        landmarks: int = 0,
        distance_cache_mb: float = 0.0,
        index_path: str | None = None,
        max_restarts: int = 3,
        restart_window_s: float = 5.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        hang_timeout_s: float | None = None,
        monitor_interval_s: float = 0.05,
        poison_threshold: int = 2,
        fault_rules: tuple = (),
        fault_seed: int = 0,
        wal_path: str | None = None,
        live_eps: float = 1.0,
        live_min_sup: int = 1,
        backend: str | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        worker_factory: Callable[[int], object] | None = None,
    ) -> None:
        if processes < 1:
            raise ParameterError(f"processes must be >= 1, got {processes}")
        if queue_depth < 1:
            raise ParameterError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_restarts < 0:
            raise ParameterError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if poison_threshold < 1:
            raise ParameterError(
                f"poison_threshold must be >= 1, got {poison_threshold}"
            )
        if backend not in (None, "dict", "csr"):
            raise ParameterError(
                f"unknown network backend {backend!r} (expected 'dict' or 'csr')"
            )
        if backend == "csr" and wal_path is not None:
            # Workers freeze the workload at startup; live mutations would
            # stale the frozen arrays on the first reweigh, so the
            # combination is refused up front.
            raise ParameterError(
                "backend='csr' cannot serve live mutations; "
                "use the dict backend with a mutation log"
            )
        self._backend = "csr" if backend == "csr" else "dict"
        self._workload = workload
        self._landmarks = landmarks
        self._distance_cache_mb = distance_cache_mb
        self._index_path = index_path
        self.default_timeout_s = default_timeout_s
        self.max_restarts = max_restarts
        self.restart_window_s = restart_window_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.hang_timeout_s = hang_timeout_s
        self.monitor_interval_s = monitor_interval_s
        self.poison_threshold = poison_threshold
        self._fault_rules = tuple(fault_rules)
        self._fault_seed = fault_seed
        self._wal_path = wal_path
        self._live_eps = live_eps
        self._live_min_sup = live_min_sup
        #: The pool's oracle live state (``None`` without ``wal_path``):
        #: the supervisor applies every mutation here first, and worker
        #: convergence is always measured against this session.
        self.session = None
        if wal_path is not None:
            from repro.io import load_workload_file
            from repro.live import LiveSession, WriteAheadLog

            network, points = load_workload_file(workload)
            self.session = LiveSession(
                network, points, eps=live_eps, min_sup=live_min_sup,
                wal=WriteAheadLog(wal_path),
            )
            # Crash-consistent startup: whatever a previous incarnation
            # acknowledged is in the log; replay it before any worker can
            # be spawned (their specs pin this epoch).
            self.session.replay_wal()
        self._clock = clock
        self._sleep = sleep
        self._worker_factory = worker_factory or self._spawn_process_worker
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._stopping = False
        self._started_at = clock()
        self._inflight = 0
        #: fingerprint -> worker deaths it was in flight for
        self._death_counts: dict[str, int] = {}
        self._quarantined: set[str] = set()
        #: every restart attempt: {"t", "slot", "attempt", "delay_s"} on
        #: the pool clock — the audit trail the storm tests assert against.
        self.restart_log: list[dict] = []
        #: pid of every worker that reached readiness, in spawn order; the
        #: no-orphans tests assert every one is gone after close().
        self.spawned_pids: list[int] = []
        #: index source each ready worker reported ("mmap" / "degraded" /
        #: "built" / "none"), in spawn order — the zero-rebuild audit
        #: trail: with a persisted index no entry may ever read "built",
        #: including entries appended by kill-fault restarts.
        self.index_sources: list[str] = []
        self._h_latency = _METRICS.histogram("serve.latency")
        self._h_queue_wait = _METRICS.histogram("serve.queue_wait")
        self._h_exec = _METRICS.histogram("serve.exec")
        self._gauge_fns = [
            ("serve.queue_depth", self._queue.qsize),
            ("serve.workers_live", self._live_workers),
            ("serve.inflight", lambda: self._inflight),
        ]
        if self.session is not None:
            self._gauge_fns.append(
                ("serve.epoch", lambda: self.session.epoch)
            )
        self._gauges = [
            _METRICS.gauge(name, fn) for name, fn in self._gauge_fns
        ]
        self._slots = [
            _Slot(i, CircuitBreaker(
                failure_threshold=max_restarts + 1,
                reset_timeout_s=restart_window_s,
                clock=clock,
                name=f"serve.slot{i}",
            ))
            for i in range(processes)
        ]
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._slot_loop, args=(slot,),
                name=f"repro-supervise-{slot.index}", daemon=True,
            )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch", daemon=True
        )
        self._monitor: threading.Thread | None = None
        self._monitor_stop = threading.Event()
        if hang_timeout_s is not None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-monitor", daemon=True
            )
        for slot in self._slots:
            slot.thread.start()
        self._dispatcher.start()
        if self._monitor is not None:
            self._monitor.start()

    # -- client side -----------------------------------------------------

    def submit(self, request: dict, timeout_s: object = _UNSET) -> Future:
        """Admit a request; its future resolves to exactly one terminal
        outcome — a result, or one typed error from the taxonomy
        (``Overloaded`` / ``PoisonRequest`` raised here synchronously)."""
        if timeout_s is _UNSET:
            timeout_s = self._request_timeout_s(request)
        op = request.get("op")
        if self.session is None and op in (
            "mutate", "subscribe_epoch", "snapshot"
        ):
            raise ParameterError(
                f"op {op!r} requires live mutations — start the pool "
                "with a --wal mutation log"
            )
        if op in ("mutate", "subscribe_epoch"):
            # Centralised ops: the supervisor owns the log and the epoch,
            # so neither rides the dispatch queue.  ``mutate`` is answered
            # synchronously (append + apply + broadcast, all under the
            # session lock); ``subscribe_epoch`` parks on a waiter thread
            # so it never occupies a worker process.
            with self._lock:
                if self._closed:
                    raise RuntimeError("SupervisedPool is closed")
            _obs_add("serve.submitted")
            future: Future = Future()
            if op == "mutate":
                self._answer_mutate(request, future)
            else:
                self._subscribe_epoch(request, timeout_s, future)
            return future
        fingerprint = request_fingerprint(request)
        with self._lock:
            if self._closed:
                raise RuntimeError("SupervisedPool is closed")
            if fingerprint in self._quarantined:
                raise PoisonRequest(
                    fingerprint, self._death_counts.get(fingerprint, 0)
                )
            if not any(s.state != _DEAD for s in self._slots):
                # Fully degraded: every slot's restart circuit is open.
                _obs_add("serve.shed")
                raise Overloaded(self._queue.maxsize)
            deadline = Deadline(timeout_s, clock=self._clock)
            future: Future = Future()
            admitted_at = self._clock() if _OBS.enabled else None
            is_stats = request.get("op") == "stats"
            if not is_stats:
                try:
                    self._queue.put_nowait(
                        _Item(request, deadline, future, admitted_at)
                    )
                except queue.Full:
                    _obs_add("serve.shed")
                    raise Overloaded(self._queue.maxsize) from None
        if is_stats:
            # Answered from supervisor state (outside the pool lock —
            # stats_snapshot takes it): workers have no view of pool
            # telemetry, and stats must work even mid-storm.
            future.set_result(self.stats_snapshot())
            _obs_add("serve.submitted")
            _obs_add("serve.completed")
            return future
        _obs_add("serve.submitted")
        return future

    def _request_timeout_s(self, request: dict) -> float | None:
        raw = request.get("timeout_ms")
        if raw is None:
            return self.default_timeout_s
        if (
            isinstance(raw, bool)
            or not isinstance(raw, (int, float))
            or raw != raw  # NaN
            or raw < 0
        ):
            raise ParameterError(
                f"timeout_ms must be a number >= 0, got {raw!r}"
            )
        return float(raw) / 1000.0

    def call(self, request: dict, timeout_s: object = _UNSET) -> object:
        return self.submit(request, timeout_s).result()

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if not item.begin():
                continue
            try:
                item.deadline.check("serve.dequeue")
            except DeadlineExceeded as exc:
                self._resolve_error(item, exc)
                continue
            with self._cond:
                slot = None
                while not self._stopping:
                    live = [s for s in self._slots if s.state != _DEAD]
                    if not live:
                        break
                    idle = [s for s in live if s.state == _IDLE]
                    if idle:
                        slot = min(idle, key=lambda s: s.index)
                        break
                    self._cond.wait()
                if slot is None:
                    # Fully degraded (or closing): nobody will ever run it.
                    self._resolve_error(item, Overloaded(self._queue.maxsize))
                    continue
                slot.state = _BUSY
                slot.busy = item
                slot.seq += 1
                item.seq = slot.seq
                item.dispatched_at = self._clock()
                self._inflight += 1
                if item.admitted_at is not None:
                    self._h_queue_wait.observe(
                        item.dispatched_at - item.admitted_at
                    )
                handle = slot.handle
            frame = {"seq": item.seq, "request": item.request}
            remaining = item.deadline.remaining()
            if remaining is not None:
                frame["deadline_s"] = remaining
            try:
                with slot.send_lock:
                    handle.send(frame)
            except (OSError, ValueError):
                # Worker died between readiness and dispatch; its slot
                # thread will observe the EOF and run the death path,
                # which fails over / resolves this very item.
                pass

    # -- live mutations --------------------------------------------------

    def _answer_mutate(self, request: dict, future: Future) -> None:
        """Append, apply, broadcast, then resolve — in that order.

        The session lock is held from the conflict check through the
        broadcast: mutations reach every worker pipe in epoch order, and
        the future resolves only after the last send, so any query the
        client submits after seeing the ack is FIFO-ordered behind the
        apply frame on whichever worker pipe carries it.  Worker acks are
        *not* awaited — they only feed lag telemetry.
        """
        if not future.set_running_or_notify_cancel():
            return
        session = self.session
        try:
            with session.lock:
                ack = session.mutate(request.get("mutation"))
                self._broadcast_apply(session.last_mutation, session.epoch)
        except Exception as exc:
            _obs_add("serve.errors")
            future.set_exception(exc)
        else:
            _obs_add("serve.completed")
            future.set_result(ack)

    def _broadcast_apply(self, mutation: dict, epoch: int) -> None:
        """Send one apply frame to every live worker (caller holds the
        session lock).  A send failure is deliberately ignored: the pipe
        is breaking because the worker is dying, and the restart path
        replays the durable log past this very mutation."""
        with self._cond:
            targets = []
            for slot in self._slots:
                if slot.state in (_IDLE, _BUSY) and slot.handle is not None:
                    slot.seq += 1
                    targets.append((slot, slot.handle, {
                        "seq": slot.seq, "apply": mutation, "epoch": epoch,
                    }))
        for slot, handle, frame in targets:
            try:
                with slot.send_lock:
                    handle.send(frame)
            except (OSError, ValueError):
                pass

    def _subscribe_epoch(self, request: dict, timeout_s, future) -> None:
        """Answer ``subscribe_epoch`` from the supervisor's session on a
        dedicated waiter thread (worker processes are single-threaded
        request loops — parking one on a condition would stall its
        slot)."""
        session = self.session

        def _wait() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                from_epoch = request.get("from_epoch", 0)
                if isinstance(from_epoch, bool) or not isinstance(
                    from_epoch, int
                ):
                    raise ParameterError(
                        f"from_epoch must be an integer, got {from_epoch!r}"
                    )
                result = session.wait_for_epoch(
                    from_epoch, timeout_s=timeout_s
                )
            except Exception as exc:
                _obs_add("serve.errors")
                if isinstance(exc, DeadlineExceeded):
                    _obs_add("serve.deadline_exceeded")
                future.set_exception(exc)
            else:
                _obs_add("serve.completed")
                future.set_result(result)

        threading.Thread(
            target=_wait, name="repro-subscribe", daemon=True
        ).start()

    def _catch_up(self, slot: _Slot, handle, worker_epoch: int) -> bool:
        """Bring a freshly-ready worker to the pool epoch, then mark it
        idle — atomically against broadcasts.

        The worker replayed the log before its ready frame, but mutations
        acknowledged between its spawn and now were only broadcast to
        workers that were live then.  Catch-up frames (flagged
        ``"replay"`` — they re-deliver durably-logged records, so the
        ``live.apply`` chaos site must not fire) are sent and
        acknowledged synchronously on this slot's thread.  The
        idle-marking runs under the pool condition: a concurrent mutate
        broadcasts under the same condition, so every mutation is either
        seen by the final epoch comparison here or broadcast to the slot
        after it turns idle — never neither.
        """
        session = self.session
        while not self._stopping:
            with self._cond:
                if session.epoch <= worker_epoch:
                    slot.handle = handle
                    slot.state = _IDLE
                    slot.applied_epoch = worker_epoch
                    slot.last_seen = self._clock()
                    self._cond.notify_all()
                    return True
            for seq, mutation in session.mutations_since(worker_epoch):
                slot.seq += 1
                frame = {
                    "seq": slot.seq, "apply": mutation, "epoch": seq,
                    "replay": True,
                }
                try:
                    handle.send(frame)
                    ack = handle.recv()
                except (OSError, ValueError):
                    return False
                if ack is None or int(ack.get("applied", -1)) < seq:
                    return False
                worker_epoch = int(ack.get("applied"))
        return False

    def _on_applied(self, slot: _Slot, doc: dict) -> None:
        """Route one broadcast-apply ack.

        A successful ack updates the slot's lag telemetry and counts as
        proof of life for its storm breaker.  A failed apply (sequence
        gap — a broadcast was lost) means the worker's world can no
        longer be trusted: SIGKILL it and let the ordinary death path
        restart it through replay + catch-up.
        """
        applied = doc.get("applied", -1)
        if isinstance(applied, int) and not isinstance(applied, bool) \
                and applied >= 0:
            with self._cond:
                slot.applied_epoch = max(slot.applied_epoch, applied)
                slot.last_seen = self._clock()
            slot.consecutive_failures = 0
            slot.breaker.record_success()
            return
        handle = slot.handle
        if handle is not None:
            handle.kill()

    # -- slot supervision ------------------------------------------------

    def _slot_loop(self, slot: _Slot) -> None:
        while not self._stopping:
            if slot.handle is None:
                if not self._start_worker(slot):
                    return  # degraded: the slot retires until close()
                continue
            doc = slot.handle.recv()
            if self._stopping:
                return
            if doc is None:
                self._on_worker_death(slot)
                continue
            if doc.get("pong"):
                slot.last_seen = self._clock()
                continue
            if "applied" in doc:
                self._on_applied(slot, doc)
                continue
            self._on_answer(slot, doc)

    def _start_worker(self, slot: _Slot) -> bool:
        """(Re)start ``slot``'s worker, gated by its storm breaker.

        Returns False when the breaker is open: the slot degrades.
        """
        while not self._stopping:
            try:
                slot.breaker.allow("serve.supervisor.restart")
            except Exception:
                with self._cond:
                    slot.state = _DEAD
                    self._cond.notify_all()
                _obs_add("serve.supervisor.degraded")
                self._shed_if_dead()
                return False
            attempt = slot.consecutive_failures
            if attempt > 0:
                # Capped exponential spacing for the k-th consecutive
                # failure, logged as an *attempt* (a worker that never even
                # reaches readiness still leaves the storm's audit trail).
                delay = min(
                    self.backoff_cap_s,
                    self.backoff_base_s * (2 ** (attempt - 1)),
                )
                self._sleep(delay)
                if self._stopping:
                    return False
                self.restart_log.append({
                    "t": self._clock(), "slot": slot.index,
                    "attempt": attempt, "delay_s": delay,
                })
                _obs_add("serve.supervisor.restarts")
            handle = self._worker_factory(slot.index)
            ready = handle.recv()
            if ready is None or not ready.get("ready"):
                handle.kill()
                handle.join(5.0)
                slot.consecutive_failures += 1
                slot.breaker.record_failure()
                _obs_add("serve.supervisor.worker_deaths")
                continue
            if handle.pid is not None:
                self.spawned_pids.append(handle.pid)
            self.index_sources.append(str(ready.get("index", "none")))
            if attempt > 0:
                # Gauges registered at construction may have been replaced
                # by another component since; re-assert them on every
                # worker replacement so `serve.workers_live` and friends
                # reflect the pool that actually owns the workers now.
                self._reregister_gauges()
            if self.session is not None:
                # The ready frame's epoch is how far the worker's own WAL
                # replay got; close the gap to the pool epoch before any
                # request can be dispatched to it (idle-marking happens
                # inside _catch_up, atomically against broadcasts).
                if self._catch_up(slot, handle, int(ready.get("epoch", 0))):
                    return True
                if self._stopping:
                    # The pool is closing and this worker was never
                    # registered on the slot: reap it here or nobody will
                    # (close() only walks slot handles).
                    handle.kill()
                    handle.join(5.0)
                    return False
                handle.kill()
                handle.join(5.0)
                slot.consecutive_failures += 1
                slot.breaker.record_failure()
                _obs_add("serve.supervisor.worker_deaths")
                continue
            with self._cond:
                slot.handle = handle
                slot.state = _IDLE
                slot.last_seen = self._clock()
                self._cond.notify_all()
            return True
        return False

    def _on_worker_death(self, slot: _Slot) -> None:
        with self._cond:
            item, slot.busy = slot.busy, None
            handle, slot.handle = slot.handle, None
            slot.state = _STARTING
            if item is not None:
                self._inflight -= 1
            self._cond.notify_all()
        pid = getattr(handle, "pid", None)
        handle.kill()  # idempotent: ensures hung-but-writable dies too
        handle.join(5.0)
        slot.consecutive_failures += 1
        slot.breaker.record_failure()
        _obs_add("serve.supervisor.worker_deaths")
        if item is None:
            return
        fingerprint = request_fingerprint(item.request)
        with self._lock:
            deaths = self._death_counts.get(fingerprint, 0) + 1
            self._death_counts[fingerprint] = deaths
            if deaths >= self.poison_threshold:
                self._quarantined.add(fingerprint)
                quarantine = True
            else:
                quarantine = False
        if quarantine:
            _obs_add("serve.supervisor.quarantined")
            self._resolve_error(item, PoisonRequest(fingerprint, deaths))
            return
        if item.request.get("op") in IDEMPOTENT_OPS and not item.retried:
            item.retried = True
            requeued = False
            with self._lock:
                if not self._closed:
                    try:
                        self._queue.put_nowait(item)
                        requeued = True
                    except queue.Full:
                        pass
            if requeued:
                _obs_add("serve.supervisor.failovers")
                return
        self._resolve_error(
            item,
            WorkerCrashed(
                f"pid {pid} died at seq {item.seq}",
                request_id=item.request.get("id"),
                pid=pid,
            ),
        )

    def _on_answer(self, slot: _Slot, doc: dict) -> None:
        with self._cond:
            item = slot.busy
            if item is None or doc.get("seq") != item.seq:
                return  # stale frame: never match it to newer work
            slot.busy = None
            slot.state = _IDLE
            slot.last_seen = self._clock()
            self._inflight -= 1
            self._cond.notify_all()
        slot.consecutive_failures = 0
        slot.breaker.record_success()
        if doc.get("ok"):
            _obs_add("serve.completed")
            item.future.set_result(doc.get("result"))
            self._observe_done(item)
        else:
            from repro.serve.remote import RemoteRequestError

            exc = RemoteRequestError(
                doc.get("error", "InternalError"), doc.get("message", "")
            )
            if exc.wire_name == "DeadlineExceeded":
                _obs_add("serve.deadline_exceeded")
            _obs_add("serve.errors")
            item.future.set_exception(exc)
            self._observe_done(item)

    def _resolve_error(self, item: _Item, exc: Exception) -> None:
        _obs_add("serve.errors")
        if isinstance(exc, DeadlineExceeded):
            _obs_add("serve.deadline_exceeded")
        if not item.begin():
            return
        item.future.set_exception(exc)
        self._observe_done(item)

    def _observe_done(self, item: _Item) -> None:
        if item.admitted_at is None:
            return
        done = self._clock()
        if item.dispatched_at is not None:
            self._h_exec.observe(done - item.dispatched_at)
        self._h_latency.observe(done - item.admitted_at)

    def _shed_if_dead(self) -> None:
        """Fail everything queued once no slot can ever run it."""
        with self._lock:
            if any(s.state != _DEAD for s in self._slots):
                return
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                self._queue.put(item)
                return
            self._resolve_error(item, Overloaded(self._queue.maxsize))

    # -- monitor ---------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.monitor_interval_s):
            now = self._clock()
            for slot in self._slots:
                with self._cond:
                    state = slot.state
                    handle = slot.handle
                    item = slot.busy
                if handle is None:
                    continue
                if (
                    state == _BUSY
                    and item is not None
                    and item.dispatched_at is not None
                    and now - item.dispatched_at > self.hang_timeout_s
                ):
                    # Hung worker: SIGKILL converts the hang into the
                    # ordinary EOF death path (failover, poison, restart).
                    _obs_add("serve.supervisor.hangs")
                    handle.kill()
                    continue
                if state == _IDLE:
                    slot.seq += 1
                    try:
                        with slot.send_lock:
                            handle.send({"seq": slot.seq, "ping": True})
                    except (OSError, ValueError):
                        pass  # EOF will surface in the slot thread

    # -- telemetry -------------------------------------------------------

    def _live_workers(self) -> int:
        return sum(1 for s in self._slots if s.state in (_IDLE, _BUSY))

    def _reregister_gauges(self) -> None:
        """Re-assert this pool's gauges (see close() for ownership rules)."""
        self._gauges = [
            _METRICS.gauge(name, fn) for name, fn in self._gauge_fns
        ]

    def stats_snapshot(self) -> dict:
        from repro.obs.report import snapshot as _obs_snapshot

        metrics = _METRICS.snapshot()
        with self._lock:
            supervisor = {
                "processes": len(self._slots),
                "live": self._live_workers(),
                "degraded": [
                    s.index for s in self._slots if s.state == _DEAD
                ],
                "restarts": len(self.restart_log),
                "restart_log": [dict(e) for e in self.restart_log],
                "quarantined": len(self._quarantined),
                "worker_deaths": sum(self._death_counts.values()),
                "index_sources": list(self.index_sources),
            }
            if self.session is not None:
                supervisor["worker_epochs"] = [
                    s.applied_epoch for s in self._slots
                ]
        doc = {
            "uptime_s": max(self._clock() - self._started_at, 0.0),
            "counters": _obs_snapshot()["counters"],
            "histograms": metrics["histograms"],
            "gauges": metrics["gauges"],
            "supervisor": supervisor,
        }
        if self.session is not None:
            doc.update(self.session.stats())
        return doc

    # -- worker spawning -------------------------------------------------

    def _spawn_process_worker(self, slot_index: int) -> ProcessWorker:
        spec = {
            "workload": self._workload,
            "landmarks": self._landmarks,
            "distance_cache_mb": self._distance_cache_mb,
        }
        if self._backend != "dict":
            spec["backend"] = self._backend
        if self._index_path is not None:
            spec["index_path"] = self._index_path
        if self._wal_path is not None:
            # Pin the pool epoch at spawn time: the worker must replay at
            # least this far before reporting ready (mutations landing
            # after the snapshot of this field are closed by catch-up).
            spec["wal"] = self._wal_path
            spec["epoch"] = self.session.epoch
            spec["live_eps"] = self._live_eps
            spec["live_min_sup"] = self._live_min_sup
        if self._fault_rules:
            spec["faults"] = {
                "seed": self._fault_seed,
                "kill_real": True,
                "rules": [rule.to_dict() for rule in self._fault_rules],
            }
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__
        )))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.worker", json.dumps(spec)],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )
        return ProcessWorker(proc)

    # -- lifecycle -------------------------------------------------------

    def close(self, drain: bool = True, timeout_s: float = 30.0) -> bool:
        """Stop admissions, drain (or cancel) queued work, reap every
        worker process.  Returns True when no worker survived — the
        no-orphans guarantee the chaos CI job asserts with a ``ps`` delta.
        """
        with self._lock:
            if self._closed:
                return self._reaped()
            self._closed = True
        if self.session is not None:
            # Wake every parked subscribe_epoch waiter (they raise
            # Cancelled) before anything below can block on them.
            self.session.shutdown()
        if not drain:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    continue
                if item.begin():
                    item.future.set_exception(Cancelled("service shutdown"))
        self._queue.put(_STOP)
        deadline = time.monotonic() + timeout_s
        with self._cond:
            self._cond.wait_for(
                lambda: all(s.busy is None for s in self._slots),
                timeout=timeout_s,
            )
            self._stopping = True
            self._cond.notify_all()
        self._monitor_stop.set()
        # EOF on stdin is the workers' clean-retirement signal; the slot
        # threads see the mirrored stdout EOF and exit (stopping is set).
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.close_stdin()
        self._dispatcher.join(max(deadline - time.monotonic(), 0.1))
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(max(deadline - time.monotonic(), 0.1))
        if self._monitor is not None:
            self._monitor.join(max(deadline - time.monotonic(), 0.1))
        for slot in self._slots:
            handle = slot.handle
            if handle is None:
                continue
            if not handle.join(max(deadline - time.monotonic(), 0.1)):
                handle.kill()  # no worker outlives its supervisor
                handle.join(5.0)
        # Whatever is still queued (racing submissions, failovers that
        # crossed the close) must not leave futures unresolved forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            if item.begin():
                item.future.set_exception(Cancelled("service shutdown"))
        for gauge in self._gauges:
            _METRICS.unregister_gauge(gauge.name, owner=gauge)
        if self.session is not None:
            self.session.close()  # releases the single-writer WAL handle
        return self._reaped()

    def _reaped(self) -> bool:
        return all(
            slot.handle is None or not slot.handle.alive()
            for slot in self._slots
        )

    def __enter__(self) -> SupervisedPool:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
