"""Admission-controlled concurrent query service (``repro serve``).

The production shape of the ROADMAP's north star: a threaded
:class:`QueryService` answering network ε-range / kNN / clustering
requests over one workload, with a bounded admission queue (typed
:class:`~repro.exceptions.Overloaded` load-shedding), per-request
deadlines observed by the cooperative checkpoints of
:mod:`repro.resilience`, per-request failure isolation, and graceful
drain.  The line-delimited JSON wire format and the exception → error-name
taxonomy live in :mod:`repro.serve.protocol`; the ``repro serve``
subcommand (see ``docs/resilience.md``) wraps it all for the shell.

``repro serve --processes N`` swaps the threaded pool for a
:class:`SupervisedPool` of worker *processes* (:mod:`repro.serve.worker`
over the framed pipes of :mod:`repro.serve.frames`): same wire surface,
same results bit-for-bit, but workers can be SIGKILLed at any
instruction and the supervisor restarts them with capped exponential
backoff, fails over in-flight idempotent requests, quarantines poison
requests, and degrades through a per-slot restart-storm circuit — see
the "Process supervision" section of ``docs/resilience.md``.

``repro serve --wal LOG`` adds the durable live-mutation ops on either
tier: ``mutate`` (acknowledged only after the write-ahead-log fsync),
``subscribe_epoch``, and ``snapshot``, with the maintained ε-Link
clustering kept incrementally and replayed crash-consistently from the
log — see ``docs/robustness.md`` and :mod:`repro.live`.
"""

from repro.serve.protocol import (
    OPS,
    error_name,
    error_response,
    parse_request,
    result_response,
)
from repro.serve.remote import RemoteRequestError
from repro.serve.service import (
    LIVE_OPS,
    QueryService,
    build_algorithm,
    run_query,
)
from repro.serve.supervisor import ProcessWorker, SupervisedPool

__all__ = [
    "LIVE_OPS",
    "OPS",
    "ProcessWorker",
    "QueryService",
    "RemoteRequestError",
    "SupervisedPool",
    "build_algorithm",
    "error_name",
    "error_response",
    "parse_request",
    "result_response",
    "run_query",
]
