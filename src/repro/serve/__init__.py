"""Admission-controlled concurrent query service (``repro serve``).

The production shape of the ROADMAP's north star: a threaded
:class:`QueryService` answering network ε-range / kNN / clustering
requests over one workload, with a bounded admission queue (typed
:class:`~repro.exceptions.Overloaded` load-shedding), per-request
deadlines observed by the cooperative checkpoints of
:mod:`repro.resilience`, per-request failure isolation, and graceful
drain.  The line-delimited JSON wire format and the exception → error-name
taxonomy live in :mod:`repro.serve.protocol`; the ``repro serve``
subcommand (see ``docs/resilience.md``) wraps it all for the shell.
"""

from repro.serve.protocol import (
    OPS,
    error_name,
    error_response,
    parse_request,
    result_response,
)
from repro.serve.service import QueryService, build_algorithm

__all__ = [
    "OPS",
    "QueryService",
    "build_algorithm",
    "error_name",
    "error_response",
    "parse_request",
    "result_response",
]
