"""Combining multiple networks with transition edges (paper Section 6).

"Another application is the discovery of clusters across different networks
(e.g., a road network and a river/canal network) by combining both of them.
For this, we can define transition edges that connect pairs of points from
the networks (e.g., piers).  Transition weights are assigned on them to
model the cost of transition.  In this way, shortest path distances between
objects from different original networks can be defined in the combined
network and discovered clusters may contain objects lying on both graphs."

:func:`combine_networks` merges any number of networks into one — node ids
are namespaced per source network — and adds weighted transition edges
between them.  Since transitions often attach mid-edge (a pier is rarely an
intersection), :func:`split_edge` materialises a network node at an
arbitrary position on an edge first.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.exceptions import InvalidPositionError, ParameterError
from repro.network.graph import SpatialNetwork, normalize_edge
from repro.network.points import PointSet

__all__ = ["split_edge", "combine_networks", "CombinedNetwork", "Transition"]


def split_edge(
    network: SpatialNetwork,
    u: int,
    v: int,
    offset: float,
    new_node: int | None = None,
) -> int:
    """Insert a node at ``offset`` from ``min(u, v)`` along edge (u, v).

    The edge is replaced by two edges whose weights sum to the original
    weight.  Returns the new node's id (``max node id + 1`` when not
    given).  Coordinates are interpolated when the endpoints carry them.
    """
    a, b = normalize_edge(u, v)
    weight = network.edge_weight(a, b)
    if not 0 < offset < weight:
        raise InvalidPositionError(
            f"split offset must lie strictly inside (0, {weight}), got {offset}"
        )
    if new_node is None:
        new_node = max(network.nodes()) + 1
    elif network.has_node(new_node):
        raise ParameterError(f"node {new_node} already exists")
    if network.has_coords(a) and network.has_coords(b):
        ax, ay = network.node_coords(a)
        bx, by = network.node_coords(b)
        frac = offset / weight
        network.add_node(new_node, x=ax + frac * (bx - ax), y=ay + frac * (by - ay))
    else:
        network.add_node(new_node)
    network.remove_edge(a, b)
    network.add_edge(a, new_node, offset)
    network.add_edge(new_node, b, weight - offset)
    return new_node


@dataclass(frozen=True)
class Transition:
    """A weighted connection between nodes of two different networks.

    ``from_net`` / ``to_net`` index into the network list given to
    :func:`combine_networks`; the nodes are ids in those networks.
    """

    from_net: int
    from_node: int
    to_net: int
    to_node: int
    weight: float


class CombinedNetwork:
    """The merge result: the combined network plus the id namespacing.

    Attributes
    ----------
    network:
        The combined :class:`SpatialNetwork`.
    offsets:
        ``offsets[i]`` added to every node id of source network ``i``.
    """

    def __init__(self, network: SpatialNetwork, offsets: list[int]) -> None:
        self.network = network
        self.offsets = offsets

    def global_node(self, net_index: int, node: int) -> int:
        """The combined id of a source network's node."""
        return node + self.offsets[net_index]

    def translate_points(
        self, net_index: int, points: PointSet, id_offset: int = 0
    ) -> list:
        """Point records of one source network's point set: edge endpoints
        shifted into the combined node namespace and point ids shifted by
        ``id_offset`` (node and point namespaces are independent)."""
        from repro.network.points import NetworkPoint

        off = self.offsets[net_index]
        out = []
        for p in points:
            out.append(
                NetworkPoint(
                    p.point_id + id_offset, p.u + off, p.v + off, p.offset,
                    label=p.label,
                )
            )
        return out

    def merge_point_sets(self, point_sets: Sequence[PointSet]) -> PointSet:
        """One PointSet over the combined network holding every network's
        objects, with point ids renumbered to stay unique (each set's ids
        are shifted past the previous sets' maximum)."""
        merged = PointSet(self.network)
        id_offset = 0
        for i, ps in enumerate(point_sets):
            max_pid = -1
            for p in self.translate_points(i, ps, id_offset=id_offset):
                merged.add(p.u, p.v, p.offset, point_id=p.point_id, label=p.label)
                max_pid = max(max_pid, p.point_id)
            id_offset = max_pid + 1
        return merged


def combine_networks(
    networks: Sequence[SpatialNetwork],
    transitions: Iterable[Transition],
    name: str = "combined",
) -> CombinedNetwork:
    """Merge networks and connect them with transition edges.

    Node ids are namespaced: network ``i``'s ids are shifted by the running
    maximum so they never collide.  Each transition becomes an ordinary
    weighted edge in the combined network, so every algorithm in the
    library applies directly.
    """
    if not networks:
        raise ParameterError("at least one network is required")
    offsets: list[int] = []
    running = 0
    combined = SpatialNetwork(name=name)
    for net in networks:
        offsets.append(running)
        max_id = -1
        for node in net.nodes():
            if node < 0:
                raise ParameterError("combine_networks requires non-negative ids")
            max_id = max(max_id, node)
            if net.has_coords(node):
                x, y = net.node_coords(node)
                combined.add_node(node + running, x=x, y=y)
            else:
                combined.add_node(node + running)
        for u, v, w in net.edges():
            combined.add_edge(u + running, v + running, w)
        running += max_id + 1
    result = CombinedNetwork(combined, offsets)
    for tr in transitions:
        if tr.weight <= 0:
            raise ParameterError(f"transition weight must be positive: {tr}")
        if not 0 <= tr.from_net < len(networks) or not 0 <= tr.to_net < len(networks):
            raise ParameterError(f"transition references unknown network: {tr}")
        u = result.global_node(tr.from_net, tr.from_node)
        v = result.global_node(tr.to_net, tr.to_node)
        if not combined.has_node(u) or not combined.has_node(v):
            raise ParameterError(f"transition references unknown node: {tr}")
        combined.add_edge(u, v, tr.weight)
    return result
