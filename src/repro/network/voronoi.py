"""Network Voronoi assignment: nearest-site partitioning of objects.

The building block behind both ``Medoid_Dist_Find`` (Figure 4) and
Single-Link's traversal, exposed as a public service: given *site* objects
(medoids, facilities, branch locations), assign every object — or every
node — to its nearest site by network distance, in **one** concurrent
expansion of the network.

Typical use, straight from the paper's motivation: "restaurant chains which
want to open a new branch in the city" can partition the customer objects
by their nearest existing branch and measure each branch's catchment.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView, POINT, point_vertex
from repro.network.dijkstra import multi_source
from repro.network.points import PointSet

__all__ = ["network_voronoi", "node_voronoi"]


def network_voronoi(
    network,
    points: PointSet,
    site_ids: Iterable[int],
) -> tuple[dict[int, int], dict[int, float]]:
    """Assign every object to its nearest site object.

    Parameters
    ----------
    network:
        Network backend (in-memory or disk-backed).
    points:
        All objects, sites included.
    site_ids:
        The point ids acting as Voronoi sites.

    Returns
    -------
    ``(assignment, distance)``: per point id, the nearest site's id and the
    network distance to it.  Objects unreachable from every site are absent
    from both maps.
    """
    sites = list(dict.fromkeys(site_ids))
    if not sites:
        raise ParameterError("at least one site is required")
    for sid in sites:
        points.get(sid)  # raises PointNotFoundError when absent
    aug = AugmentedView(network, points)
    seeds = [(0.0, point_vertex(sid), sid) for sid in sites]
    dist, owner = multi_source(aug, seeds)
    assignment: dict[int, int] = {}
    distance: dict[int, float] = {}
    for vertex, d in dist.items():
        kind, ident = vertex
        if kind == POINT:
            assignment[ident] = owner[vertex]
            distance[ident] = d
    return assignment, distance


def node_voronoi(
    network,
    points: PointSet,
    site_ids: Iterable[int],
) -> tuple[dict[int, int], dict[int, float]]:
    """Assign every network *node* to its nearest site object.

    The node tagging of the paper's Figure 4 for arbitrary sites: useful
    for painting catchment areas over the whole network rather than only
    over the objects.  Returns ``(node -> site id, node -> distance)``.
    """
    sites = list(dict.fromkeys(site_ids))
    if not sites:
        raise ParameterError("at least one site is required")
    entries: list[tuple[float, int, int]] = []
    for sid in sites:
        site = points.get(sid)
        weight = network.edge_weight(site.u, site.v)
        entries.append((site.offset, site.u, sid))
        entries.append((weight - site.offset, site.v, sid))
    dist, owner = multi_source(network, entries)
    return dict(owner), dict(dist)
