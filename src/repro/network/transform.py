"""The object-graph transformation strawman (Section 3.2, Figure 2).

The paper considers transforming "the weighted graph G to a new graph G',
where each node n_p in G' is an object p from the original network G and
there is an edge (n_p, n_q) in G', if there is a path from p to q in G not
passing via any other object s.  The weight of this edge corresponds to the
length of the (shortest) path between p and q" — and then rejects it: "the
transformation ... is quite expensive requiring many shortest path
computations.  Second, the transformed graph may no longer be planar and it
can contain complex components ... For instance the ring on the left of
Figure 2b translates to a clique."

:func:`object_graph` builds exactly that G', so the blow-up can be measured
instead of argued: see :func:`transformation_blowup` and the tests
reproducing the Figure 2b ring-to-clique example.  The construction runs
one *blocked* expansion per object (other objects terminate the search
frontier — paths may end at an object but never pass through one), which is
precisely the "many shortest path computations" cost the paper warns about.
"""

from __future__ import annotations

import heapq

from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView, POINT, point_vertex
from repro.network.points import PointSet

__all__ = ["object_graph", "transformation_blowup"]


def object_graph(network, points: PointSet) -> dict[tuple[int, int], float]:
    """The transformed graph G' of Section 3.2.

    Returns the edge set as ``{(smaller_pid, larger_pid): weight}`` where an
    edge exists iff some path between the two objects passes no third
    object, weighted by the shortest such path.

    One expansion per object over the point-augmented graph, in which other
    object vertices are settled (recording the edge) but never relaxed
    through — the literal "path not passing via any other object s".
    """
    if len(points) == 0:
        raise ParameterError("the point set is empty; nothing to transform")
    aug = AugmentedView(network, points)
    edges: dict[tuple[int, int], float] = {}
    for p in points:
        source = point_vertex(p.point_id)
        dist: dict = {}
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
        while heap:
            d, vertex = heapq.heappop(heap)
            if vertex in dist:
                continue
            dist[vertex] = d
            kind, ident = vertex
            if kind == POINT and ident != p.point_id:
                # Another object: a G' edge ends here; do not pass through.
                pair = (min(p.point_id, ident), max(p.point_id, ident))
                if d < edges.get(pair, float("inf")):
                    edges[pair] = d
                continue
            for nbr, seg in aug.neighbors(vertex):
                if nbr not in dist:
                    heapq.heappush(heap, (d + seg, nbr))
        # Each direction is computed independently; symmetry of the network
        # makes both directions agree, and the dict keeps the minimum.
    return edges


def transformation_blowup(network, points: PointSet) -> dict[str, float]:
    """Quantify the Section 3.2 argument against the transformation.

    Returns the size of G' next to G and the density ratio: on networks
    where many objects see each other without intermediaries, G' gains
    edges far faster than it sheds nodes — rings of pendant objects become
    cliques — which is why the paper clusters on the original network
    instead.
    """
    edges = object_graph(network, points)
    n = len(points)
    max_edges = n * (n - 1) / 2 or 1
    return {
        "original_nodes": network.num_nodes,
        "original_edges": network.num_edges,
        "transformed_nodes": n,
        "transformed_edges": len(edges),
        "original_density": network.num_edges / max(1, network.num_nodes),
        "transformed_density": len(edges) / max(1, n),
        "clique_fraction": len(edges) / max_edges,
    }
