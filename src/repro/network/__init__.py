"""Spatial network substrate: graph model, objects on edges, distances,
shortest-path traversals, and network queries.

This subpackage implements Section 3 of the paper (problem definitions) and
the traversal primitives that Section 4's clustering algorithms are built
from.
"""

from repro.network.augmented import AugmentedView, NODE, POINT, node_vertex, point_vertex
from repro.network.components import (
    connected_components,
    extract_fraction,
    is_connected,
    largest_connected_component,
)
from repro.network.dijkstra import (
    all_pairs_node_distances,
    multi_source,
    node_distance,
    single_source,
    single_source_with_paths,
)
from repro.network.distance import (
    direct_distance,
    direct_point_node_distance,
    network_distance,
    network_distance_formula,
    pairwise_point_distances,
)
from repro.network.astar import node_distance_astar, point_distance_astar
from repro.network.csr import CSRNetwork, resolve_backend
from repro.network.graph import SpatialNetwork, normalize_edge
from repro.network.interface import NetworkBackend
from repro.network.knngraph import build_knn_graph, mutual_knn_edges
from repro.network.multinet import (
    CombinedNetwork,
    Transition,
    combine_networks,
    split_edge,
)
from repro.network.points import NetworkPoint, PointSet
from repro.network.queries import knn_query, nearest_point, range_query
from repro.network.voronoi import network_voronoi, node_voronoi
from repro.network.transform import object_graph, transformation_blowup
from repro.network.timedep import (
    TimeDependentNetwork,
    WeightProfile,
    rush_hour_profile,
    time_parameterized_clusters,
)
from repro.network.weights import (
    apply_measure,
    combine_measures,
    euclidean_measure,
    toll_measure,
    travel_time_measure,
)

__all__ = [
    "AugmentedView",
    "NODE",
    "POINT",
    "node_vertex",
    "point_vertex",
    "connected_components",
    "extract_fraction",
    "is_connected",
    "largest_connected_component",
    "all_pairs_node_distances",
    "multi_source",
    "node_distance",
    "single_source",
    "single_source_with_paths",
    "direct_distance",
    "direct_point_node_distance",
    "network_distance",
    "network_distance_formula",
    "pairwise_point_distances",
    "SpatialNetwork",
    "normalize_edge",
    "CSRNetwork",
    "NetworkBackend",
    "resolve_backend",
    "node_distance_astar",
    "point_distance_astar",
    "NetworkPoint",
    "PointSet",
    "knn_query",
    "nearest_point",
    "range_query",
    "network_voronoi",
    "node_voronoi",
    "build_knn_graph",
    "mutual_knn_edges",
    "object_graph",
    "transformation_blowup",
    "CombinedNetwork",
    "Transition",
    "combine_networks",
    "split_edge",
    "TimeDependentNetwork",
    "WeightProfile",
    "rush_hour_profile",
    "time_parameterized_clusters",
    "apply_measure",
    "combine_measures",
    "euclidean_measure",
    "toll_measure",
    "travel_time_measure",
]
