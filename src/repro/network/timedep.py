"""Time-dependent edge weights and time-parameterized clustering
(paper Section 6).

"An advanced problem is the discovery of time-dependent clusters in a model,
where edge weights vary with time.  For example, traffic on a road segment
depends on the time of the day ... Based on this model, we can derive
clusters whose content is time-parameterized."

:class:`WeightProfile` models one edge's weight over a repeating period as a
piecewise-linear function; :class:`TimeDependentNetwork` holds a base
network plus per-edge profiles and materialises a plain
:class:`~repro.network.graph.SpatialNetwork` *snapshot* at any time — so all
clustering algorithms apply unchanged per snapshot, and
:func:`time_parameterized_clusters` sweeps a clustering over a time grid.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Iterable, Mapping

from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork, normalize_edge

__all__ = [
    "WeightProfile",
    "rush_hour_profile",
    "TimeDependentNetwork",
    "time_parameterized_clusters",
]


class WeightProfile:
    """A periodic piecewise-linear weight profile.

    Parameters
    ----------
    breakpoints:
        ``(time, weight)`` pairs with strictly increasing times inside
        ``[0, period)``; weights between breakpoints are linearly
        interpolated, wrapping around the period.
    period:
        Cycle length (e.g. 24.0 for hours of a day).
    """

    def __init__(
        self, breakpoints: Iterable[tuple[float, float]], period: float = 24.0
    ) -> None:
        if period <= 0:
            raise ParameterError(f"period must be positive, got {period!r}")
        pts = sorted((float(t), float(w)) for t, w in breakpoints)
        if not pts:
            raise ParameterError("at least one breakpoint is required")
        times = [t for t, _ in pts]
        if len(set(times)) != len(times):
            raise ParameterError("breakpoint times must be distinct")
        if times[0] < 0 or times[-1] >= period:
            raise ParameterError("breakpoint times must lie in [0, period)")
        if any(w <= 0 for _, w in pts):
            raise ParameterError("profile weights must be positive")
        self.period = float(period)
        self._times = times
        self._weights = [w for _, w in pts]

    def __call__(self, t: float) -> float:
        """The weight at time ``t`` (any real; wrapped into the period)."""
        t = t % self.period
        times, weights = self._times, self._weights
        if len(times) == 1:
            return weights[0]
        i = bisect.bisect_right(times, t) - 1
        if i < 0:  # before the first breakpoint: wrap from the last
            t0, w0 = times[-1] - self.period, weights[-1]
            t1, w1 = times[0], weights[0]
        elif i == len(times) - 1:  # after the last: wrap to the first
            t0, w0 = times[-1], weights[-1]
            t1, w1 = times[0] + self.period, weights[0]
        else:
            t0, w0 = times[i], weights[i]
            t1, w1 = times[i + 1], weights[i + 1]
        frac = (t - t0) / (t1 - t0)
        return w0 + frac * (w1 - w0)


def rush_hour_profile(
    base_weight: float,
    peak_factor: float = 3.0,
    peaks: Iterable[float] = (8.0, 18.0),
    peak_width: float = 2.0,
    period: float = 24.0,
) -> WeightProfile:
    """A daily traffic profile: base weight with slowdown spikes at peaks.

    The weight rises linearly to ``base_weight * peak_factor`` at each peak
    time and back down ``peak_width`` later/earlier.
    """
    if peak_factor < 1:
        raise ParameterError("peak_factor must be >= 1")
    breakpoints: list[tuple[float, float]] = []
    for peak in peaks:
        breakpoints.append(((peak - peak_width) % period, base_weight))
        breakpoints.append((peak % period, base_weight * peak_factor))
        breakpoints.append(((peak + peak_width) % period, base_weight))
    # Deduplicate identical times (overlapping shoulders keep the max).
    merged: dict[float, float] = {}
    for t, w in breakpoints:
        merged[t] = max(w, merged.get(t, 0.0))
    return WeightProfile(sorted(merged.items()), period=period)


class TimeDependentNetwork:
    """A network whose edge weights vary periodically with time.

    Parameters
    ----------
    base:
        The static network (its weights are the default for edges without a
        profile).
    profiles:
        Mapping from canonical edges to :class:`WeightProfile` (or any
        callable ``t -> weight``).
    """

    def __init__(
        self,
        base: SpatialNetwork,
        profiles: Mapping[tuple[int, int], Callable[[float], float]],
    ) -> None:
        self.base = base
        self.profiles: dict[tuple[int, int], Callable[[float], float]] = {}
        for edge, profile in profiles.items():
            canon = normalize_edge(*edge)
            if not base.has_edge(*canon):
                raise ParameterError(f"profiled edge {edge} does not exist")
            self.profiles[canon] = profile

    def weight_at(self, u: int, v: int, t: float) -> float:
        """Edge weight at time ``t``."""
        canon = normalize_edge(u, v)
        profile = self.profiles.get(canon)
        if profile is None:
            return self.base.edge_weight(u, v)
        return profile(t)

    def snapshot(self, t: float) -> SpatialNetwork:
        """The static network at time ``t`` (all weights materialised)."""
        return self.base.reweighted(
            lambda u, v, w: self.weight_at(u, v, t),
            name=f"{self.base.name}@t={t:g}",
        )


def time_parameterized_clusters(
    tdn: TimeDependentNetwork,
    points,
    times: Iterable[float],
    clusterer_factory,
):
    """Clusters at each time of a grid (Section 6's time-dependent clusters).

    ``clusterer_factory(network, points)`` builds a configured clustering
    algorithm for one snapshot (e.g.
    ``lambda net, pts: EpsLink(net, pts, eps=2.0)``); ``points`` must be a
    :class:`~repro.network.points.PointSet` built against ``tdn.base``
    (positions are *offsets*, which stay valid only if profiles never drop a
    weight below an offset — validated per snapshot).

    Returns ``{t: ClusteringResult}``.
    """
    from repro.network.points import PointSet

    results = {}
    for t in times:
        net_t = tdn.snapshot(t)
        points_t = PointSet.from_points(net_t, _rescaled_points(tdn, points, t))
        results[t] = clusterer_factory(net_t, points_t).run()
    return results


def _rescaled_points(tdn: TimeDependentNetwork, points, t: float):
    """Points with offsets rescaled proportionally to the snapshot weights.

    An object at 30% of an edge stays at 30% when the edge's weight (e.g.
    travel time) changes — positions are physical, weights are costs.
    """
    from repro.network.points import NetworkPoint

    out = []
    for p in points:
        base_w = tdn.base.edge_weight(p.u, p.v)
        new_w = tdn.weight_at(p.u, p.v, t)
        frac = p.offset / base_w if base_w else 0.0
        out.append(
            NetworkPoint(p.point_id, p.u, p.v, frac * new_w, label=p.label)
        )
    return out
