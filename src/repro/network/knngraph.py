"""k-nearest-neighbour graphs over network distances.

The paper's related work discusses CHAMELEON [10], which "transforms the
problem space into a weighted k-NN graph, where each object is connected
with its k nearest neighbors" before graph partitioning.  This module
builds that structure with *network* distances — each object linked to its
k network-nearest objects — so general-purpose graph clustering methods can
be applied downstream, and so analysts can inspect neighbourhood structure
directly.

The result is returned as an adjacency mapping rather than a
:class:`~repro.network.graph.SpatialNetwork` (kNN edges are conceptual
links between objects, not road segments; forcing them into the network
model would invite accidental misuse as traversable geometry).
"""

from __future__ import annotations

from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.points import PointSet
from repro.network.queries import knn_query

__all__ = ["build_knn_graph", "mutual_knn_edges"]


def build_knn_graph(
    network,
    points: PointSet,
    k: int,
) -> dict[int, list[tuple[int, float]]]:
    """The directed k-NN graph of the objects under network distance.

    Returns ``point_id -> [(neighbour id, distance), ...]`` with up to
    ``k`` entries each, ascending by distance (fewer when the reachable
    component is small).  One network expansion per object, each stopping
    after its k-th neighbour — O(N) localized traversals.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k!r}")
    aug = AugmentedView(network, points)
    graph: dict[int, list[tuple[int, float]]] = {}
    for p in points:
        hits = knn_query(aug, p, k=k)
        graph[p.point_id] = [(q.point_id, d) for q, d in hits]
    return graph


def mutual_knn_edges(
    graph: dict[int, list[tuple[int, float]]],
) -> list[tuple[int, int, float]]:
    """The undirected *mutual* k-NN edges of a directed k-NN graph.

    An edge (a, b) survives only when a lists b **and** b lists a — the
    symmetrisation CHAMELEON-style methods use to avoid hub objects gluing
    unrelated regions together.  Returned as canonical
    ``(min_id, max_id, distance)`` triples sorted by distance.
    """
    listed: dict[tuple[int, int], float] = {}
    mutual: list[tuple[int, int, float]] = []
    for a, neighbors in graph.items():
        for b, d in neighbors:
            key = (min(a, b), max(a, b))
            if key in listed:
                mutual.append((key[0], key[1], min(d, listed[key])))
            else:
                listed[key] = d
    mutual.sort(key=lambda e: (e[2], e[0], e[1]))
    return mutual
