"""Dijkstra shortest-path primitives over a spatial network.

These are the traversal building blocks the paper's algorithms are assembled
from:

* :func:`single_source` — classic Dijkstra from one node, with optional
  target set and distance cutoff (each adjacency list visited at most once,
  as the paper notes).
* :func:`node_distance` — point-to-point shortest path distance between two
  nodes with early termination.
* :func:`multi_source` — *concurrent expansion* from many labelled seeds
  (Figure 4 of the paper): every reachable node is assigned the label of the
  closest seed together with its distance.  This is the core of
  ``Medoid_Dist_Find`` and of the network-Voronoi construction used by
  Single-Link.
* :func:`all_pairs_node_distances` — the O(|V|^2) precomputation strawman of
  Section 3.2, provided as a baseline.

All functions operate on any object implementing ``neighbors(node)``
returning ``(neighbor, weight)`` pairs — the in-memory
:class:`~repro.network.graph.SpatialNetwork`, the disk-backed store, and
the frozen :class:`~repro.network.csr.CSRNetwork` all qualify.  A backend
may expose array-native kernels (``dijkstra_single_source``,
``dijkstra_single_source_with_paths``, ``dijkstra_multi_source``); when
present they are dispatched to directly and must be bit-identical twins of
the loops below (see :mod:`repro.network.interface`).

Observability
-------------
When :mod:`repro.obs` is enabled, traversals report under the ``dijkstra.*``
namespace: ``runs``, ``heap_pushes``, ``heap_pops``, ``nodes_settled`` and
``edges_relaxed``.  The counting lives in *twin* loops selected by a single
flag check on entry, so a disabled run executes the exact uninstrumented
bytecode — the paper's cost curves must never be perturbed by the tooling
that measures them.

Robustness
----------
When :mod:`repro.faults` is engaged (fault rules installed or an
:class:`~repro.faults.OpBudget` active) or a :mod:`repro.resilience`
deadline is active, a third *guarded* twin runs instead: it hits the
``dijkstra.settle`` injection site on every settle, charges the active
budget (expansions per settle, distance computations per edge relaxation),
and runs the cooperative deadline/cancellation checkpoint — raising the
typed :class:`~repro.exceptions.Interrupted` subclasses
(:class:`~repro.exceptions.BudgetExceededError`,
:class:`~repro.exceptions.DeadlineExceeded`,
:class:`~repro.exceptions.Cancelled`) with the partially computed distance
map.  Dispatch order is guarded > counted > plain, so fault/budget/deadline
semantics hold whether or not observability is on.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Mapping

from repro.exceptions import UnreachableError
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.obs.core import STATE as _OBS, add as _obs_add
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = [
    "single_source",
    "single_source_with_paths",
    "node_distance",
    "multi_source",
    "all_pairs_node_distances",
]


def single_source(
    network,
    source: int,
    targets: Iterable[int] | None = None,
    cutoff: float = math.inf,
) -> dict[int, float]:
    """Shortest-path distances from ``source`` to reachable nodes.

    Parameters
    ----------
    network:
        Object with a ``neighbors(node) -> iterable[(node, weight)]`` method.
    source:
        Start node.
    targets:
        If given, the search stops once *all* targets have been settled;
        only then can distances to non-target nodes be partial.
    cutoff:
        Nodes farther than this are not expanded or reported.

    Returns
    -------
    dict mapping node -> distance, containing every settled node.
    """
    kernel = getattr(network, "dijkstra_single_source", None)
    if kernel is not None:
        return kernel(source, targets=targets, cutoff=cutoff)
    if _FAULTS.engaged or _RES.engaged:
        return _single_source_guarded(network, source, targets, cutoff)
    if _OBS.enabled:
        return _single_source_counted(network, source, targets, cutoff)
    remaining = set(targets) if targets is not None else None
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for nbr, weight in network.neighbors(node):
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                heapq.heappush(heap, (nd, nbr))
    return dist


def _single_source_counted(
    network,
    source: int,
    targets: Iterable[int] | None,
    cutoff: float,
) -> dict[int, float]:
    """Counting twin of :func:`single_source` (obs enabled)."""
    remaining = set(targets) if targets is not None else None
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    pops = 0
    pushes = 1  # the seed entry
    relaxed = 0
    while heap:
        d, node = heapq.heappop(heap)
        pops += 1
        if node in dist:
            continue
        dist[node] = d
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for nbr, weight in network.neighbors(node):
            relaxed += 1
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                heapq.heappush(heap, (nd, nbr))
                pushes += 1
    _obs_add("dijkstra.runs")
    _obs_add("dijkstra.heap_pops", pops)
    _obs_add("dijkstra.heap_pushes", pushes)
    _obs_add("dijkstra.edges_relaxed", relaxed)
    _obs_add("dijkstra.nodes_settled", len(dist))
    return dist


def _single_source_guarded(
    network,
    source: int,
    targets: Iterable[int] | None,
    cutoff: float,
) -> dict[int, float]:
    """Fault/budget/deadline twin of :func:`single_source`.

    Also counts for obs when it is enabled, so engaging faults never
    silences the cost counters.
    """
    budget = _FAULTS.budget
    remaining = set(targets) if targets is not None else None
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    pops = 0
    pushes = 1
    relaxed = 0
    while heap:
        d, node = heapq.heappop(heap)
        pops += 1
        if node in dist:
            continue
        _fault("dijkstra.settle")
        if _RES.engaged:
            _res_check("dijkstra.settle", partial=dist)
        if budget is not None:
            budget.spend_expansions(1, partial=dist)
        dist[node] = d
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for nbr, weight in network.neighbors(node):
            relaxed += 1
            if budget is not None:
                budget.spend_distance_computations(1, partial=dist)
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                heapq.heappush(heap, (nd, nbr))
                pushes += 1
    if _OBS.enabled:
        _obs_add("dijkstra.runs")
        _obs_add("dijkstra.heap_pops", pops)
        _obs_add("dijkstra.heap_pushes", pushes)
        _obs_add("dijkstra.edges_relaxed", relaxed)
        _obs_add("dijkstra.nodes_settled", len(dist))
    return dist


def single_source_with_paths(
    network,
    source: int,
    cutoff: float = math.inf,
) -> tuple[dict[int, float], dict[int, int]]:
    """Like :func:`single_source` but also returns a predecessor map.

    The predecessor map sends each settled node (except the source) to the
    previous node on one shortest path from the source.  Twin discipline
    matches :func:`single_source` exactly: the guarded path charges the
    budget per settle *and* per relaxed edge, and the counted path emits
    the full ``dijkstra.*`` counter set.
    """
    kernel = getattr(network, "dijkstra_single_source_with_paths", None)
    if kernel is not None:
        return kernel(source, cutoff=cutoff)
    if _FAULTS.engaged or _RES.engaged:
        return _with_paths_guarded(network, source, cutoff)
    if _OBS.enabled:
        return _with_paths_counted(network, source, cutoff)
    dist: dict[int, float] = {}
    pred: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, source, source)]
    while heap:
        d, node, parent = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        if node != source:
            pred[node] = parent
        for nbr, weight in network.neighbors(node):
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                heapq.heappush(heap, (nd, nbr, node))
    return dist, pred


def _with_paths_counted(
    network,
    source: int,
    cutoff: float,
) -> tuple[dict[int, float], dict[int, int]]:
    """Counting twin of :func:`single_source_with_paths` (obs enabled)."""
    dist: dict[int, float] = {}
    pred: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, source, source)]
    pops = 0
    pushes = 1  # the seed entry
    relaxed = 0
    while heap:
        d, node, parent = heapq.heappop(heap)
        pops += 1
        if node in dist:
            continue
        dist[node] = d
        if node != source:
            pred[node] = parent
        for nbr, weight in network.neighbors(node):
            relaxed += 1
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                heapq.heappush(heap, (nd, nbr, node))
                pushes += 1
    _obs_add("dijkstra.runs")
    _obs_add("dijkstra.heap_pops", pops)
    _obs_add("dijkstra.heap_pushes", pushes)
    _obs_add("dijkstra.edges_relaxed", relaxed)
    _obs_add("dijkstra.nodes_settled", len(dist))
    return dist, pred


def _with_paths_guarded(
    network,
    source: int,
    cutoff: float,
) -> tuple[dict[int, float], dict[int, int]]:
    """Fault/budget/deadline twin of :func:`single_source_with_paths`."""
    budget = _FAULTS.budget
    dist: dict[int, float] = {}
    pred: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = [(0.0, source, source)]
    pops = 0
    pushes = 1
    relaxed = 0
    while heap:
        d, node, parent = heapq.heappop(heap)
        pops += 1
        if node in dist:
            continue
        _fault("dijkstra.settle")
        if _RES.engaged:
            _res_check("dijkstra.settle", partial=dist)
        if budget is not None:
            budget.spend_expansions(1, partial=dist)
        dist[node] = d
        if node != source:
            pred[node] = parent
        for nbr, weight in network.neighbors(node):
            relaxed += 1
            if budget is not None:
                budget.spend_distance_computations(1, partial=dist)
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                heapq.heappush(heap, (nd, nbr, node))
                pushes += 1
    if _OBS.enabled:
        _obs_add("dijkstra.runs")
        _obs_add("dijkstra.heap_pops", pops)
        _obs_add("dijkstra.heap_pushes", pushes)
        _obs_add("dijkstra.edges_relaxed", relaxed)
        _obs_add("dijkstra.nodes_settled", len(dist))
    return dist, pred


def node_distance(network, source: int, target: int) -> float:
    """Network distance ``d(n_i, n_j)`` between two nodes (Definition 3).

    Runs Dijkstra from ``source`` with early termination at ``target``.
    Raises :class:`UnreachableError` when no path exists.
    """
    if source == target:
        return 0.0
    dist = single_source(network, source, targets=(target,))
    try:
        return dist[target]
    except KeyError:
        raise UnreachableError(
            f"node {target} is not reachable from node {source}"
        ) from None


def multi_source(
    network,
    seeds: Mapping[int, Iterable[tuple[float, object]]] | list[tuple[float, int, object]],
    cutoff: float = math.inf,
) -> tuple[dict[int, float], dict[int, object]]:
    """Concurrent Dijkstra expansion from labelled seeds (paper Figure 4).

    ``seeds`` is a list of ``(initial_distance, node, label)`` entries; a
    node may be seeded several times with different labels/distances (e.g.
    the two endpoints of every medoid's edge).  The expansion settles each
    node exactly once, at which moment its nearest label and distance are
    final — this is the property Figure 4's ``Concurrent_Expansion`` relies
    on ("if a node has been dequeued before, it has already been assigned to
    some medoid with a smaller distance").

    Returns ``(dist, label)`` dictionaries over all settled nodes.
    """
    if isinstance(seeds, Mapping):
        entries: list[tuple[float, int, object]] = []
        for node, pairs in seeds.items():
            for d0, lab in pairs:
                entries.append((d0, node, lab))
    else:
        entries = list(seeds)

    kernel = getattr(network, "dijkstra_multi_source", None)
    if kernel is not None:
        return kernel(entries, cutoff=cutoff)
    if _FAULTS.engaged or _RES.engaged:
        return _multi_source_guarded(network, entries, cutoff)
    if _OBS.enabled:
        return _multi_source_counted(network, entries, cutoff)

    dist: dict[int, float] = {}
    label: dict[int, object] = {}
    counter = 0  # tie-breaker so heterogeneous labels never get compared
    heap: list[tuple[float, int, int, object]] = []
    for d0, node, lab in entries:
        if d0 <= cutoff:
            heap.append((d0, counter, node, lab))
            counter += 1
    heapq.heapify(heap)

    while heap:
        d, _, node, lab = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        label[node] = lab
        for nbr, weight in network.neighbors(node):
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                counter += 1
                heapq.heappush(heap, (nd, counter, nbr, lab))
    return dist, label


def _multi_source_counted(
    network,
    entries: list[tuple[float, int, object]],
    cutoff: float,
) -> tuple[dict[int, float], dict[int, object]]:
    """Counting twin of :func:`multi_source` (obs enabled)."""
    dist: dict[int, float] = {}
    label: dict[int, object] = {}
    counter = 0
    heap: list[tuple[float, int, int, object]] = []
    for d0, node, lab in entries:
        if d0 <= cutoff:
            heap.append((d0, counter, node, lab))
            counter += 1
    heapq.heapify(heap)
    pops = 0
    pushes = len(heap)
    relaxed = 0

    while heap:
        d, _, node, lab = heapq.heappop(heap)
        pops += 1
        if node in dist:
            continue
        dist[node] = d
        label[node] = lab
        for nbr, weight in network.neighbors(node):
            relaxed += 1
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                counter += 1
                heapq.heappush(heap, (nd, counter, nbr, lab))
                pushes += 1
    _obs_add("dijkstra.multi_source_runs")
    _obs_add("dijkstra.heap_pops", pops)
    _obs_add("dijkstra.heap_pushes", pushes)
    _obs_add("dijkstra.edges_relaxed", relaxed)
    _obs_add("dijkstra.nodes_settled", len(dist))
    return dist, label


def _multi_source_guarded(
    network,
    entries: list[tuple[float, int, object]],
    cutoff: float,
) -> tuple[dict[int, float], dict[int, object]]:
    """Fault/budget/deadline twin of :func:`multi_source`."""
    budget = _FAULTS.budget
    dist: dict[int, float] = {}
    label: dict[int, object] = {}
    counter = 0
    heap: list[tuple[float, int, int, object]] = []
    for d0, node, lab in entries:
        if d0 <= cutoff:
            heap.append((d0, counter, node, lab))
            counter += 1
    heapq.heapify(heap)
    pops = 0
    pushes = len(heap)
    relaxed = 0

    while heap:
        d, _, node, lab = heapq.heappop(heap)
        pops += 1
        if node in dist:
            continue
        _fault("dijkstra.settle")
        if _RES.engaged:
            _res_check("dijkstra.settle", partial=(dist, label))
        if budget is not None:
            budget.spend_expansions(1, partial=(dist, label))
        dist[node] = d
        label[node] = lab
        for nbr, weight in network.neighbors(node):
            relaxed += 1
            if budget is not None:
                budget.spend_distance_computations(1, partial=(dist, label))
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= cutoff:
                counter += 1
                heapq.heappush(heap, (nd, counter, nbr, lab))
                pushes += 1
    if _OBS.enabled:
        _obs_add("dijkstra.multi_source_runs")
        _obs_add("dijkstra.heap_pops", pops)
        _obs_add("dijkstra.heap_pushes", pushes)
        _obs_add("dijkstra.edges_relaxed", relaxed)
        _obs_add("dijkstra.nodes_settled", len(dist))
    return dist, label


def all_pairs_node_distances(network) -> dict[int, dict[int, float]]:
    """All-pairs shortest path distances via repeated Dijkstra.

    This is the O(|V|^2 log |V|) / O(|V|^2) space strawman the paper's
    Section 3.2 argues against for large networks; it is exposed for the
    baseline experiments and for validating the traversal algorithms on
    small networks.
    """
    return {node: single_source(network, node) for node in network.nodes()}
