"""In-memory spatial network model.

A *spatial network* (Definition 1 of the paper) is an undirected weighted
graph ``G = (V, E, W)`` where every edge carries a positive real weight.
Nodes optionally carry planar coordinates; when they do, edge weights default
to the Euclidean distance between the endpoints, which matches the setting
used in the paper's experiments ("the weights of the graph edges were set
equal to the Euclidean distance of the connected nodes") while still allowing
arbitrary positive weights (travel time, toll cost, ...).

The class is deliberately small and explicit: adjacency is a dict of dicts,
node coordinates a dict, and every accessor validates its inputs.  Clustering
algorithms do not use this class directly; they talk to the
:class:`~repro.network.interface.NetworkBackend` protocol which this class,
the disk-backed :class:`~repro.storage.netstore.NetworkStore`, and the
frozen array backend :class:`~repro.network.csr.CSRNetwork` all implement,
so the same algorithm code runs on any backend.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidWeightError,
    MissingCoordinatesError,
    NetworkError,
    NodeNotFoundError,
)

__all__ = ["SpatialNetwork", "normalize_edge"]


def normalize_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical (sorted) form of an undirected edge.

    The paper expresses object positions unambiguously by requiring
    ``n_i < n_j`` in the triplet ``<n_i, n_j, pos>`` (Definition 1); the same
    canonicalisation is applied to every edge key in this library.
    """
    if u == v:
        raise NetworkError(f"self-loop edge ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


class SpatialNetwork:
    """An undirected, positively weighted spatial network.

    Parameters
    ----------
    name:
        Optional human-readable label (e.g. ``"OL"``), used in reports.

    Examples
    --------
    >>> net = SpatialNetwork()
    >>> net.add_node(1, x=0.0, y=0.0)
    >>> net.add_node(2, x=3.0, y=4.0)
    >>> net.add_edge(1, 2)          # weight defaults to Euclidean distance
    >>> net.edge_weight(1, 2)
    5.0
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._adj: dict[int, dict[int, float]] = {}
        self._coords: dict[int, tuple[float, float]] = {}
        self._num_edges = 0
        # Monotone mutation counter.  Frozen backends (repro.network.csr)
        # capture it at freeze time and compare on every access, so a
        # mutation after the freeze raises StaleBackendError instead of
        # serving distances off arrays that no longer match the network.
        self._edition = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, x: float | None = None, y: float | None = None) -> None:
        """Add a node, optionally with planar coordinates.

        Adding an existing node is a no-op except that new coordinates (when
        given) replace the old ones.
        """
        if node not in self._adj:
            self._adj[node] = {}
            self._edition += 1
        if x is not None or y is not None:
            if x is None or y is None:
                raise NetworkError("both x and y coordinates must be given together")
            self._coords[node] = (float(x), float(y))

    def add_edge(self, u: int, v: int, weight: float | None = None) -> None:
        """Add an undirected edge with a positive weight.

        If ``weight`` is omitted, both endpoints must carry coordinates and
        the Euclidean distance between them is used.  Re-adding an existing
        edge replaces its weight.
        """
        u, v = normalize_edge(u, v)
        self.add_node(u)
        self.add_node(v)
        if weight is None:
            weight = self.euclidean_node_distance(u, v)
        weight = float(weight)
        if not math.isfinite(weight) or weight <= 0.0:
            raise InvalidWeightError(
                f"edge ({u}, {v}) weight must be a positive finite number, got {weight!r}"
            )
        if v not in self._adj[u]:
            self._num_edges += 1
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._edition += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove an edge; raises :class:`EdgeNotFoundError` if absent."""
        u, v = normalize_edge(u, v)
        if u not in self._adj or v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._edition += 1

    @classmethod
    def from_edge_list(
        cls,
        edges: Iterable[tuple[int, int, float]],
        coords: Mapping[int, tuple[float, float]] | None = None,
        name: str = "network",
    ) -> "SpatialNetwork":
        """Build a network from ``(u, v, weight)`` triples.

        ``coords`` optionally maps node ids to ``(x, y)`` positions.
        """
        net = cls(name=name)
        if coords:
            for node, (x, y) in coords.items():
                net.add_node(node, x=x, y=y)
        for u, v, w in edges:
            net.add_edge(u, v, w)
        return net

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        return self._num_edges

    def has_node(self, node: int) -> bool:
        return node in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        if u == v:
            return False
        u, v = normalize_edge(u, v)
        return u in self._adj and v in self._adj[u]

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over canonical ``(u, v, weight)`` triples (u < v)."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield (u, v, w)

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(neighbor, edge_weight)`` pairs of ``node``.

        This is the *adjacency list* access of the paper's storage model;
        the disk-backed store provides the same method.
        """
        try:
            nbrs = self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return iter(nbrs.items())

    def degree(self, node: int) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def edge_weight(self, u: int, v: int) -> float:
        """Weight ``W(u, v)`` of an existing edge."""
        a, b = normalize_edge(u, v)
        try:
            return self._adj[a][b]
        except KeyError:
            raise EdgeNotFoundError(a, b) from None

    def node_coords(self, node: int) -> tuple[float, float]:
        """Planar coordinates of a node (raises if none were assigned)."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        try:
            return self._coords[node]
        except KeyError:
            raise MissingCoordinatesError(node) from None

    def has_coords(self, node: int) -> bool:
        return node in self._coords

    def euclidean_node_distance(self, u: int, v: int) -> float:
        """Straight-line distance between two nodes (requires coordinates)."""
        ux, uy = self.node_coords(u)
        vx, vy = self.node_coords(v)
        return math.hypot(ux - vx, uy - vy)

    def total_weight(self) -> float:
        """Sum of all edge weights (useful for sizing eps/delta parameters)."""
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------
    def subnetwork(self, nodes: Iterable[int], name: str | None = None) -> "SpatialNetwork":
        """The induced subgraph on ``nodes`` (keeping coordinates).

        Node insertion order follows the order of ``nodes``, so
        ``copy()`` (which passes :meth:`nodes`) preserves iteration
        order — seeded algorithms that sweep ``nodes()`` behave
        identically on a network and its copy.
        """
        # A dict, not a set: membership is as fast, but iteration keeps
        # the caller's order instead of hash order.
        keep = dict.fromkeys(nodes)
        missing = [node for node in keep if node not in self._adj]
        if missing:
            raise NodeNotFoundError(missing[0])
        sub = SpatialNetwork(name=name or f"{self.name}-sub")
        for node in keep:
            if node in self._coords:
                x, y = self._coords[node]
                sub.add_node(node, x=x, y=y)
            else:
                sub.add_node(node)
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, w)
        return sub

    def copy(self) -> "SpatialNetwork":
        """A deep, independent copy of this network."""
        return self.subnetwork(self.nodes(), name=self.name)

    def reweighted(self, fn, name: str | None = None) -> "SpatialNetwork":
        """A copy with every edge weight mapped through ``fn(u, v, w)``.

        Supports the paper's Section 6 discussion of alternative weight
        measures (time, cost, aggregates of several measures).
        """
        out = SpatialNetwork(name=name or f"{self.name}-reweighted")
        for node in self.nodes():
            if node in self._coords:
                x, y = self._coords[node]
                out.add_node(node, x=x, y=y)
            else:
                out.add_node(node)
        for u, v, w in self.edges():
            out.add_edge(u, v, fn(u, v, w))
        return out

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return (
            f"SpatialNetwork(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
