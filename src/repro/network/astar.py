"""Euclidean-bounded (A*) shortest-path search.

The network query algorithms of Papadias et al. [16], which the paper builds
on, "are extensions of Dijkstra's shortest path that utilize Euclidean
distance bounds to accelerate search": when edge weights are lengths (or any
measure that upper-bounds progress through space), the straight-line
distance to the target never overestimates the remaining network distance,
so it is an admissible A* heuristic — the search settles far fewer vertices
on its way to the target than blind Dijkstra while returning the exact same
distance (a tested invariant).

Use :func:`node_distance_astar` / :func:`point_distance_astar` when node
coordinates are available and weights satisfy
``W(u, v) >= euclidean(u, v)`` (true by construction for the paper's
experimental networks, where weights *are* the Euclidean distances).  The
functions fall back to plain Dijkstra when coordinates are missing.
"""

from __future__ import annotations

import heapq
import math

from repro.exceptions import MissingCoordinatesError, UnreachableError
from repro.network.augmented import AugmentedView, NODE, point_vertex
from repro.network.points import NetworkPoint
from repro.obs.core import add as _obs_add

__all__ = ["node_distance_astar", "point_distance_astar"]


def _zero_heuristic(_vertex) -> float:
    return 0.0


def _heuristic_fallback() -> None:
    """Record that a search degraded to h = 0 (blind Dijkstra).

    Counted once per search (whole-search fallback) or once per search on
    the first partially-coordinated vertex — never per heuristic call.
    """
    _obs_add("perf.heuristic.fallback")


def _node_heuristic(network, target: int):
    """h(node) = straight-line distance to the target, or 0 without coords.

    Only the *missing coordinates* condition degrades the heuristic:
    backends without a ``node_coords`` accessor (the disk store) and nodes
    that simply carry no position fall back to h = 0, which keeps the
    search exact.  Everything else — unknown nodes, injected I/O faults,
    real bugs — propagates; swallowing it here would silently turn every
    A* into a full Dijkstra with no sign anything went wrong.
    """
    node_coords = getattr(network, "node_coords", None)
    if node_coords is None:
        _heuristic_fallback()
        return _zero_heuristic
    try:
        tx, ty = node_coords(target)
    except MissingCoordinatesError:
        _heuristic_fallback()
        return _zero_heuristic

    fellback = False

    def h(node: int) -> float:
        try:
            x, y = node_coords(node)
        except MissingCoordinatesError:
            # A partially-coordinated network: h = 0 for this node only
            # (still admissible).  Count the degradation once per search.
            nonlocal fellback
            if not fellback:
                fellback = True
                _heuristic_fallback()
            return 0.0
        return math.hypot(x - tx, y - ty)

    return h


def node_distance_astar(
    network, source: int, target: int
) -> tuple[float, int]:
    """Exact network distance between two nodes via A*.

    Returns ``(distance, vertices_settled)`` — the second value is the
    efficiency measure the Euclidean bound improves.  Raises
    :class:`UnreachableError` when no path exists.
    """
    if source == target:
        return 0.0, 0
    h = _node_heuristic(network, target)
    best: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, float, int]] = [(h(source), 0.0, source)]
    while heap:
        _, g, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            return g, len(settled)
        for nbr, weight in network.neighbors(node):
            ng = g + weight
            if ng < best.get(nbr, math.inf):
                best[nbr] = ng
                heapq.heappush(heap, (ng + h(nbr), ng, nbr))
    raise UnreachableError(f"node {target} is not reachable from node {source}")


def point_distance_astar(
    aug: AugmentedView, p: NetworkPoint, q: NetworkPoint
) -> tuple[float, int]:
    """Exact point-to-point network distance (Definition 4) via A*.

    Runs over the point-augmented graph with the Euclidean
    distance-to-target heuristic; point vertices use their interpolated
    positions.  Returns ``(distance, vertices_settled)``.
    """
    if p.point_id == q.point_id:
        return 0.0, 0
    network = aug.network
    if getattr(network, "node_coords", None) is None:
        _heuristic_fallback()
        h = _zero_heuristic
    else:
        try:
            tx, ty = q.coords(network)
        except MissingCoordinatesError:
            _heuristic_fallback()
            h = _zero_heuristic
        else:
            fellback = False

            def h(vertex) -> float:
                kind, ident = vertex
                try:
                    if kind == NODE:
                        x, y = network.node_coords(ident)
                    else:
                        x, y = aug.points.get(ident).coords(network)
                except MissingCoordinatesError:
                    nonlocal fellback
                    if not fellback:
                        fellback = True
                        _heuristic_fallback()
                    return 0.0
                return math.hypot(x - tx, y - ty)

    source = point_vertex(p.point_id)
    target = point_vertex(q.point_id)
    best = {source: 0.0}
    settled: set = set()
    heap: list[tuple[float, float, tuple[int, int]]] = [(h(source), 0.0, source)]
    while heap:
        _, g, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == target:
            return g, len(settled)
        for nbr, seg in aug.neighbors(vertex):
            ng = g + seg
            if ng < best.get(nbr, math.inf):
                best[nbr] = ng
                heapq.heappush(heap, (ng + h(nbr), ng, nbr))
    raise UnreachableError(
        f"point {q.point_id} is not reachable from point {p.point_id}"
    )
