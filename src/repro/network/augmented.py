"""Augmented-graph view: the network with objects inserted as vertices.

Several of the paper's algorithms (ε-Link, network range search per [16],
Single-Link's network traversal) conceptually walk a graph in which every
object splits the edge it lies on into consecutive segments.  Rather than
materialising that graph, :class:`AugmentedView` exposes it lazily through a
``neighbors(vertex)`` iterator over the *in-memory or disk-backed* network
plus a :class:`~repro.network.points.PointSet` — so traversal cost stays
proportional to the part of the network actually visited, exactly the
behaviour the paper's algorithms are designed for ("the algorithm does not
necessarily traverse the whole network, but only the edges which contain the
points or are within ε distance from some point").

Vertices are encoded as ``(kind, id)`` tuples, where ``kind`` is
:data:`NODE` (a network node) or :data:`POINT` (an object).  Tuples of ints
compare cheaply and are usable as heap tie-breakers.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.network.points import NetworkPoint, PointSet
from repro.obs.core import STATE as _OBS, add as _obs_add
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = ["AugmentedView", "NODE", "POINT", "node_vertex", "point_vertex"]

NODE = 0
POINT = 1

Vertex = tuple[int, int]


def node_vertex(node: int) -> Vertex:
    """Vertex encoding of a network node."""
    return (NODE, node)


def point_vertex(point_id: int) -> Vertex:
    """Vertex encoding of an object (point)."""
    return (POINT, point_id)


class AugmentedView:
    """Read-only adjacency view of the point-augmented network.

    Parameters
    ----------
    network:
        Backend with ``neighbors(node)`` and ``edge_weight(u, v)``.
    points:
        The objects placed on the network's edges.

    Notes
    -----
    Distances in this view equal true network distances (Definition 4):
    walking an edge through its intermediate points sums segment lengths back
    to the edge weight, and a point's only neighbours are its adjacent
    points/nodes along its own edge.
    """

    def __init__(self, network, points: PointSet) -> None:
        self._network = network
        self._points = points
        # point_id -> index of the point inside its sorted edge group;
        # built lazily one edge at a time.
        self._index_cache: dict[int, int] = {}
        self._indexed_edges: set[tuple[int, int]] = set()
        # Downstream consumers (distance caches, memoized landmark point
        # tables) register here; invalidate() is the single notification
        # point for "the point set changed under this view".
        self._invalidation_hooks: list = []
        self._points_version = getattr(points, "version", None)

    @property
    def network(self):
        return self._network

    @property
    def points(self) -> PointSet:
        return self._points

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _edge_index(self, point: NetworkPoint) -> int:
        """Index of ``point`` within the sorted point list of its edge."""
        if self._points_version is not None:
            version = self._points.version
            if version != self._points_version:
                # The point set mutated without an explicit invalidate():
                # drop the stale indexes (and notify downstream caches)
                # before serving from them.
                self.invalidate()
                self._points_version = version
        if point.edge not in self._indexed_edges:
            for i, p in enumerate(self._points.points_on_edge(point.u, point.v)):
                self._index_cache[p.point_id] = i
            self._indexed_edges.add(point.edge)
        return self._index_cache[point.point_id]

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, vertex: Vertex) -> Iterator[tuple[Vertex, float]]:
        """Iterate ``(neighbor_vertex, segment_length)`` pairs of ``vertex``."""
        kind, ident = vertex
        if _RES.engaged:
            # Cooperative deadline/cancel checkpoint: every traversal over
            # this view funnels through here, so even loops without their
            # own per-settle guard stay responsive.
            _res_check("augmented.neighbors")
        if _OBS.enabled:
            # Through add(): its locked read-modify-write keeps concurrent
            # serve workers from losing expansions counted on one shared
            # view.  Disabled path unchanged — guarded by the flag above.
            _obs_add(
                "augmented.node_expansions"
                if kind == NODE
                else "augmented.point_expansions"
            )
        if kind == NODE:
            yield from self._node_neighbors(ident)
        else:
            yield from self._point_neighbors(ident)

    def _node_neighbors(self, node: int) -> Iterator[tuple[Vertex, float]]:
        for nbr, weight in self._network.neighbors(node):
            pts = self._points.points_on_edge(node, nbr)
            if not pts:
                yield (node_vertex(nbr), weight)
                continue
            # The nearest point walking away from `node`: the first of the
            # sorted group if node is the smaller endpoint, else the last.
            if node < nbr:
                first = pts[0]
                yield (point_vertex(first.point_id), first.offset)
            else:
                first = pts[-1]
                yield (point_vertex(first.point_id), weight - first.offset)

    def _point_neighbors(self, point_id: int) -> Iterator[tuple[Vertex, float]]:
        point = self._points.get(point_id)
        group = self._points.points_on_edge(point.u, point.v)
        idx = self._edge_index(point)
        weight = self._network.edge_weight(point.u, point.v)
        # Towards the smaller endpoint u.
        if idx > 0:
            prev = group[idx - 1]
            yield (point_vertex(prev.point_id), point.offset - prev.offset)
        else:
            yield (node_vertex(point.u), point.offset)
        # Towards the larger endpoint v.
        if idx + 1 < len(group):
            nxt = group[idx + 1]
            yield (point_vertex(nxt.point_id), nxt.offset - point.offset)
        else:
            yield (node_vertex(point.v), weight - point.offset)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def seed_entries(self, point: NetworkPoint) -> list[tuple[float, Vertex]]:
        """Initial heap entries for an expansion started *at* ``point``.

        Returns the point's own vertex at distance zero; expansions that must
        avoid point vertices can instead seed the two endpoint nodes with the
        direct distances (see k-medoids, which works on nodes only).
        """
        return [(0.0, point_vertex(point.point_id))]

    def add_invalidation_hook(self, hook) -> None:
        """Register ``hook()`` to run whenever this view is invalidated.

        This is the single invalidation path for every cache keyed off the
        point set: :meth:`invalidate` (called explicitly after a mutation,
        or automatically when the point set's ``version`` is observed to
        have moved) clears the view's own edge indexes *and* fires every
        registered hook, so downstream memoization — the
        :class:`~repro.perf.DistanceCache`, memoized landmark point tables
        — can never serve distances for a point set that no longer exists.
        """
        self._invalidation_hooks.append(hook)

    def invalidate(self) -> None:
        """Drop cached edge indexes (call after mutating the point set) and
        notify every registered invalidation hook.

        Every hook runs even when an earlier one raises — a raising hook
        must not leave later caches silently stale — and the first error
        is re-raised once all hooks have been notified.
        """
        self._index_cache.clear()
        self._indexed_edges.clear()
        self._points_version = getattr(self._points, "version", None)
        first_error: BaseException | None = None
        for hook in self._invalidation_hooks:
            try:
                hook()
            except BaseException as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def refresh(self) -> None:
        """Resynchronize with the point set *without* firing hooks.

        The precise-invalidation path used by the live-mutation tier: the
        mutator has already told each downstream cache exactly which
        region changed (see ``LiveSession.apply``), so only the view's
        own edge indexes and version watermark need resetting here.
        Firing the registered hooks as well would escalate the targeted
        invalidation into a global one (the accelerator's hook clears the
        whole distance cache).
        """
        self._index_cache.clear()
        self._indexed_edges.clear()
        self._points_version = getattr(self._points, "version", None)
