"""Connectivity utilities for spatial networks.

The paper's experiments repeatedly need connected networks: the SF and TG
road maps "were not connected [so] we extracted the largest connected
component", and the Figure 14 scalability experiment extracts "connected
components of SF consisting of 10%, 20% and 50% nodes".  This module
provides those operations for any network backend.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.exceptions import NodeNotFoundError, ParameterError
from repro.network.graph import SpatialNetwork

__all__ = [
    "connected_components",
    "largest_connected_component",
    "is_connected",
    "extract_fraction",
]


def connected_components(network) -> Iterator[set[int]]:
    """Yield the node sets of the connected components (BFS)."""
    seen: set[int] = set()
    for start in network.nodes():
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for nbr, _ in network.neighbors(node):
                if nbr not in comp:
                    comp.add(nbr)
                    queue.append(nbr)
        seen |= comp
        yield comp


def largest_connected_component(network: SpatialNetwork) -> SpatialNetwork:
    """The induced subnetwork on the largest connected component."""
    best: set[int] = set()
    for comp in connected_components(network):
        if len(comp) > len(best):
            best = comp
    if not best:
        return SpatialNetwork(name=f"{network.name}-lcc")
    return network.subnetwork(best, name=f"{network.name}-lcc")


def is_connected(network) -> bool:
    """True when the network has at most one connected component."""
    components = connected_components(network)
    first = next(components, None)
    if first is None:
        return True
    return next(components, None) is None


def extract_fraction(
    network: SpatialNetwork, fraction: float, seed_node: int | None = None
) -> SpatialNetwork:
    """A connected subnetwork containing ``fraction`` of the nodes.

    Grows a BFS ball from ``seed_node`` (default: the smallest node id)
    until the requested number of nodes is reached, then returns the induced
    subgraph — this reproduces the "connected components of SF consisting of
    10%, 20%, and 50% nodes" construction of the Figure 14 experiment.  BFS
    growth guarantees the result is connected.
    """
    if not 0.0 < fraction <= 1.0:
        raise ParameterError(f"fraction must be in (0, 1], got {fraction!r}")
    target = max(1, int(round(fraction * network.num_nodes)))
    if seed_node is None:
        seed_node = min(network.nodes(), default=None)
        if seed_node is None:
            return SpatialNetwork(name=f"{network.name}-0pct")
    elif not network.has_node(seed_node):
        raise NodeNotFoundError(seed_node)
    picked: set[int] = {seed_node}
    queue = deque([seed_node])
    while queue and len(picked) < target:
        node = queue.popleft()
        for nbr, _ in network.neighbors(node):
            if nbr not in picked:
                picked.add(nbr)
                queue.append(nbr)
                if len(picked) >= target:
                    break
    pct = int(round(fraction * 100))
    return network.subnetwork(picked, name=f"{network.name}-{pct}pct")
