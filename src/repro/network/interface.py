"""The traversal protocol every network backend implements.

:class:`NetworkBackend` is the structural contract between the clustering
algorithms and whatever holds the graph: the in-memory
:class:`~repro.network.graph.SpatialNetwork`, the disk-backed
:class:`~repro.storage.netstore.NetworkStore`, and the frozen array backend
:class:`~repro.network.csr.CSRNetwork`.  Algorithms only ever call the
methods below, so swapping backends never changes algorithm code — and,
because the contract pins *iteration order* as well as values, it never
changes algorithm *results* either.

Order is part of the contract
-----------------------------
Two guarantees matter for bit-identical results across backends:

* ``nodes()`` yields node ids in a deterministic order that any derived
  backend must preserve from its source (seeded sweeps, connectivity
  analysis, and per-component orchestration all iterate it).
* ``neighbors(node)`` yields ``(neighbor, weight)`` pairs in a
  deterministic order preserved from the source (the concurrent
  multi-source expansion breaks heap ties with a push-order counter, so
  adjacency order feeds directly into label assignment on exact distance
  ties).

Optional traversal kernels
--------------------------
A backend may additionally provide array-native Dijkstra kernels —
``dijkstra_single_source``, ``dijkstra_single_source_with_paths``, and
``dijkstra_multi_source``.  The generic traversals in
:mod:`repro.network.dijkstra` duck-dispatch to them when present and fall
back to the portable heap loops otherwise.  A kernel must be a drop-in
twin: bit-identical distances, settle order, and tie-breaking, and the
same guarded/counted/plain dispatch (fault sites, budget charges, deadline
checkpoints, ``dijkstra.*`` counters) as the generic loops.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Protocol, runtime_checkable

__all__ = ["NetworkBackend"]


@runtime_checkable
class NetworkBackend(Protocol):
    """Structural protocol of a spatial-network backend.

    ``isinstance`` checks only verify method presence (the ordering
    guarantees documented in the module docstring cannot be expressed in
    the type system but are required all the same).
    """

    @property
    def num_nodes(self) -> int:
        """Number of nodes |V|."""
        ...

    @property
    def num_edges(self) -> int:
        """Number of undirected edges |E|."""
        ...

    def has_node(self, node: int) -> bool:
        """Whether ``node`` exists in the network."""
        ...

    def nodes(self) -> Iterator[int]:
        """Iterate node ids in the backend's deterministic order."""
        ...

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate canonical ``(u, v, weight)`` triples (``u < v``)."""
        ...

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs in deterministic order.

        Raises :class:`~repro.exceptions.NodeNotFoundError` for an
        unknown node.
        """
        ...

    def edge_weight(self, u: int, v: int) -> float:
        """Weight ``W(u, v)`` of an existing edge.

        Raises :class:`~repro.exceptions.EdgeNotFoundError` when the edge
        is absent.
        """
        ...
