"""Network range and nearest-neighbour queries over objects.

These reproduce the query primitives of Papadias et al. [16] that the
paper's DBSCAN adaptation relies on: given a query point on the network,
find all objects within network distance ε (:func:`range_query`) or the k
closest objects (:func:`knn_query`).  Both expand the point-augmented graph
around the query with a Dijkstra whose frontier never exceeds the answer
region, so cost is proportional to the part of the network within range.
"""

from __future__ import annotations

import heapq
import math

from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.network.augmented import AugmentedView, POINT, point_vertex
from repro.network.points import NetworkPoint
from repro.obs.core import STATE as _OBS, add as _obs_add
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = ["range_query", "knn_query", "nearest_point"]


def _result_order(hit: tuple[NetworkPoint, float]) -> tuple[float, int]:
    """Canonical result ordering: ascending distance, ties by point id.

    Shared by the plain searches here and the accelerated ones in
    :mod:`repro.perf`, so the two code paths return bit-identical lists."""
    point, distance = hit
    return (distance, point.point_id)


def range_query(
    aug: AugmentedView,
    query: NetworkPoint,
    eps: float,
    include_query: bool = True,
) -> list[tuple[NetworkPoint, float]]:
    """All objects within network distance ``eps`` of ``query``.

    Returns ``(point, distance)`` pairs sorted by ascending distance, ties
    broken by point id (a deterministic ordering shared with the
    accelerated search in :mod:`repro.perf`).  The query point itself
    (distance 0) is included by default, matching DBSCAN's convention of
    counting the centre in its ε-neighbourhood.
    """
    if eps < 0:
        return []
    guard = _FAULTS.engaged or _RES.engaged
    budget = _FAULTS.budget if guard else None
    results: list[tuple[NetworkPoint, float]] = []
    source = point_vertex(query.point_id)
    dist: dict = {}
    best: dict = {source: 0.0}  # tentative distances: no dominated pushes
    heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
    while heap:
        d, vertex = heapq.heappop(heap)
        if vertex in dist:
            continue
        if guard:
            if _FAULTS.engaged:
                _fault("queries.settle")
            if _RES.engaged:
                _res_check("queries.settle", partial=results)
            if budget is not None:
                budget.spend_expansions(1, partial=results)
        dist[vertex] = d
        kind, ident = vertex
        if kind == POINT:
            if include_query or ident != query.point_id:
                results.append((aug.points.get(ident), d))
        for nbr, weight in aug.neighbors(vertex):
            if nbr in dist:
                continue
            nd = d + weight
            if nd <= eps and nd < best.get(nbr, math.inf):
                best[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    results.sort(key=_result_order)
    if _OBS.enabled:
        _obs_add("queries.range_queries")
        _obs_add("queries.vertices_settled", len(dist))
        _obs_add("queries.points_found", len(results))
    return results


def knn_query(
    aug: AugmentedView,
    query: NetworkPoint,
    k: int,
    include_query: bool = False,
) -> list[tuple[NetworkPoint, float]]:
    """The ``k`` objects with smallest network distance from ``query``.

    Returns at most ``k`` ``(point, distance)`` pairs sorted by ascending
    distance, ties broken by point id — including the tie *at the k-th
    distance*: vertices settle in ``(distance, vertex)`` order and point
    vertices encode their point id, so of several objects exactly at the
    k-th distance the smallest ids win deterministically (the accelerated
    search in :mod:`repro.perf` makes the same choice).  Fewer pairs are
    returned when the reachable component holds fewer objects.  The query
    point itself is excluded by default.
    """
    if k <= 0:
        return []
    guard = _FAULTS.engaged or _RES.engaged
    budget = _FAULTS.budget if guard else None
    results: list[tuple[NetworkPoint, float]] = []
    source = point_vertex(query.point_id)
    dist: dict = {}
    best: dict = {source: 0.0}  # tentative distances: no dominated pushes
    heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
    while heap and len(results) < k:
        d, vertex = heapq.heappop(heap)
        if vertex in dist:
            continue
        if guard:
            if _FAULTS.engaged:
                _fault("queries.settle")
            if _RES.engaged:
                _res_check("queries.settle", partial=results)
            if budget is not None:
                budget.spend_expansions(1, partial=results)
        dist[vertex] = d
        kind, ident = vertex
        if kind == POINT and (include_query or ident != query.point_id):
            results.append((aug.points.get(ident), d))
            if len(results) == k:
                break
        for nbr, weight in aug.neighbors(vertex):
            if nbr in dist:
                continue
            nd = d + weight
            if nd < best.get(nbr, math.inf):
                best[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    results.sort(key=_result_order)
    if _OBS.enabled:
        _obs_add("queries.knn_queries")
        _obs_add("queries.vertices_settled", len(dist))
    return results


def nearest_point(
    aug: AugmentedView, query: NetworkPoint
) -> tuple[NetworkPoint, float] | None:
    """The single nearest other object, or ``None`` if query is alone."""
    hits = knn_query(aug, query, k=1)
    return hits[0] if hits else None


def eccentricity_upper_bound(aug: AugmentedView, query: NetworkPoint) -> float:
    """Distance from ``query`` to the farthest reachable object.

    Used by parameter-selection helpers (e.g. sampling a sensible ε range,
    as the paper suggests doing "by sampling on the network edges").

    The scan expands the query's entire reachable component, so it runs
    under the same guarded discipline as the queries above: each settle
    hits the ``queries.settle`` fault site, passes the cooperative
    deadline/cancellation checkpoint, and charges one expansion against
    the active budget — a deadline-armed or budgeted run is interrupted
    with the farthest distance found so far as the partial result.
    """
    guard = _FAULTS.engaged or _RES.engaged
    budget = _FAULTS.budget if guard else None
    far = 0.0
    dist: dict = {}
    heap: list[tuple[float, tuple[int, int]]] = [(0.0, point_vertex(query.point_id))]
    while heap:
        d, vertex = heapq.heappop(heap)
        if vertex in dist:
            continue
        if guard:
            if _FAULTS.engaged:
                _fault("queries.settle")
            if _RES.engaged:
                _res_check("queries.settle", partial=far)
            if budget is not None:
                budget.spend_expansions(1, partial=far)
        dist[vertex] = d
        if vertex[0] == POINT:
            far = max(far, d)
        for nbr, weight in aug.neighbors(vertex):
            if nbr not in dist:
                heapq.heappush(heap, (d + weight, nbr))
    if _OBS.enabled:
        _obs_add("queries.eccentricity_scans")
        _obs_add("queries.vertices_settled", len(dist))
    return far if math.isfinite(far) else 0.0
