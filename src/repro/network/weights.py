"""Alternative and aggregate edge-weight measures (paper Section 6).

"Our model allows clustering on networks, where arbitrary types of weights
can be assigned on the edges.  For instance, the weight on an edge ... could
be their Euclidean distance, the time to travel from one node to another,
the cost (price) of traversing the edge, etc.  Depending on the measure
used, clustering may return different results, providing multiple clustering
layers to the data analyst.  Apart from this, it is possible to combine
different weight measures with an aggregate function."

A *measure* is simply a mapping from canonical edges to positive values.
This module builds common measures and combines them into a new network, so
any clustering algorithm can run per-measure or on an aggregate.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork, normalize_edge

__all__ = [
    "euclidean_measure",
    "travel_time_measure",
    "toll_measure",
    "combine_measures",
    "apply_measure",
]

EdgeMeasure = Mapping[tuple[int, int], float]


def euclidean_measure(network: SpatialNetwork) -> dict[tuple[int, int], float]:
    """Straight-line length per edge (requires node coordinates)."""
    return {
        (u, v): network.euclidean_node_distance(u, v) for u, v, _ in network.edges()
    }


def travel_time_measure(
    network: SpatialNetwork,
    speed: float | Callable[[int, int, float], float],
) -> dict[tuple[int, int], float]:
    """Travel time per edge: length divided by speed.

    ``speed`` is either one constant or a callable ``(u, v, length) ->
    speed`` for per-edge speeds (e.g. road categories).
    """
    out: dict[tuple[int, int], float] = {}
    for u, v, w in network.edges():
        s = speed(u, v, w) if callable(speed) else float(speed)
        if s <= 0:
            raise ParameterError(f"speed on edge ({u}, {v}) must be positive")
        out[(u, v)] = w / s
    return out


def toll_measure(
    network: SpatialNetwork,
    tolled_edges: Mapping[tuple[int, int], float],
    default: float = 1e-9,
) -> dict[tuple[int, int], float]:
    """Monetary cost per edge: the given tolls, ``default`` elsewhere.

    The default must stay positive (zero-weight edges are not allowed in the
    network model), so a negligible epsilon stands in for "free".
    """
    if default <= 0:
        raise ParameterError("default toll must be positive")
    out = {(u, v): default for u, v, _ in network.edges()}
    for edge, toll in tolled_edges.items():
        canon = normalize_edge(*edge)
        if canon not in out:
            raise ParameterError(f"tolled edge {edge} does not exist")
        if toll <= 0:
            raise ParameterError(f"toll on edge {edge} must be positive")
        out[canon] = toll
    return out


def combine_measures(
    network: SpatialNetwork,
    measures: Sequence[EdgeMeasure],
    coefficients: Sequence[float] | None = None,
    aggregator: Callable[[Sequence[float]], float] | None = None,
    name: str | None = None,
) -> SpatialNetwork:
    """A network whose weights aggregate several measures.

    By default the aggregate is the ``coefficients``-weighted sum (all 1.0
    when omitted); pass ``aggregator`` for anything else (e.g. ``max``).
    Every measure must cover every edge.
    """
    if not measures:
        raise ParameterError("at least one measure is required")
    if coefficients is None:
        coefficients = [1.0] * len(measures)
    if len(coefficients) != len(measures):
        raise ParameterError(
            f"{len(coefficients)} coefficients for {len(measures)} measures"
        )

    def weight(u: int, v: int, _w: float) -> float:
        edge = (u, v)
        values = []
        for m in measures:
            if edge not in m:
                raise ParameterError(f"measure missing edge {edge}")
            values.append(m[edge])
        if aggregator is not None:
            return aggregator(values)
        return sum(c * x for c, x in zip(coefficients, values))

    return network.reweighted(weight, name=name or f"{network.name}-combined")


def apply_measure(
    network: SpatialNetwork, measure: EdgeMeasure, name: str | None = None
) -> SpatialNetwork:
    """A network carrying a single measure as its weights."""
    return combine_measures(network, [measure], name=name)
