"""Distance definitions of the paper (Definitions 2-4).

Three distances are defined between locations on a spatial network:

* the **direct distance** ``d_L`` between two points on the *same* edge, or
  between a point and an adjacent node (Definition 2) — computable in
  constant time;
* the **network distance** ``d(n_i, n_j)`` between two *nodes*: the length of
  the shortest path (Definition 3);
* the **network distance** ``d(p, q)`` between two *points* (Definition 4):
  the minimum over the four endpoint combinations of
  ``d_L(p, n_x) + d(n_x, n_y) + d_L(n_y, q)``, further reduced by the direct
  distance when the points share an edge.

Two independent implementations of point-to-point distance are provided:
:func:`network_distance_formula` evaluates Definition 4 literally (four
node-to-node Dijkstra distances), and :func:`network_distance` runs a single
Dijkstra over the point-augmented graph with early termination.  They are
verified equal by property tests; the augmented version is the one the
library uses internally.
"""

from __future__ import annotations

import heapq
import math

from repro.exceptions import UnreachableError
from repro.network.augmented import AugmentedView, point_vertex
from repro.network.dijkstra import single_source
from repro.network.points import NetworkPoint, PointSet

__all__ = [
    "direct_distance",
    "direct_point_node_distance",
    "network_distance",
    "network_distance_formula",
    "pairwise_point_distances",
]


def direct_distance(p: NetworkPoint, q: NetworkPoint) -> float:
    """Direct distance ``d_L(p, q)`` (Definition 2).

    ``|pos_p - pos_q|`` when the points lie on the same edge, infinity
    otherwise.  Note that, as the paper stresses, the direct distance of two
    points on the same edge is *not* necessarily their shortest distance.
    """
    if p.edge == q.edge:
        return abs(p.offset - q.offset)
    return math.inf


def direct_point_node_distance(network, p: NetworkPoint, node: int) -> float:
    """Direct distance ``d_L(p, n)`` from a point to an adjacent node.

    ``pos_p`` for the smaller endpoint, ``W(e) - pos_p`` for the larger
    (Definition 2); infinity for non-adjacent nodes.
    """
    if node == p.u:
        return p.offset
    if node == p.v:
        return network.edge_weight(p.u, p.v) - p.offset
    return math.inf


def network_distance_formula(network, p: NetworkPoint, q: NetworkPoint) -> float:
    """Point-to-point network distance via the Definition 4 formula.

    Runs one Dijkstra from each endpoint of ``p``'s edge (early-terminated at
    ``q``'s endpoints) and combines with the direct distances.  Kept separate
    from :func:`network_distance` as an independently implemented oracle.
    """
    best = direct_distance(p, q)
    q_ends = (q.u, q.v)
    for nx in (p.u, p.v):
        d_p_nx = direct_point_node_distance(network, p, nx)
        node_dists = single_source(network, nx, targets=q_ends)
        for ny in q_ends:
            if ny not in node_dists:
                continue
            cand = d_p_nx + node_dists[ny] + direct_point_node_distance(network, q, ny)
            if cand < best:
                best = cand
    if math.isinf(best):
        raise UnreachableError(
            f"point {q.point_id} is not reachable from point {p.point_id}"
        )
    return best


def network_distance(
    aug: AugmentedView, p: NetworkPoint, q: NetworkPoint
) -> float:
    """Exact point-to-point network distance ``d(p, q)`` (Definition 4).

    A single Dijkstra over the point-augmented graph starting at ``p``,
    early-terminated when ``q`` is settled.  Equivalent to
    :func:`network_distance_formula` but touches only the region of the
    network between the two points.
    """
    if p.point_id == q.point_id:
        return 0.0
    source = point_vertex(p.point_id)
    target = point_vertex(q.point_id)
    dist: dict = {}
    heap: list[tuple[float, tuple[int, int]]] = [(0.0, source)]
    while heap:
        d, vertex = heapq.heappop(heap)
        if vertex in dist:
            continue
        dist[vertex] = d
        if vertex == target:
            return d
        for nbr, weight in aug.neighbors(vertex):
            if nbr not in dist:
                heapq.heappush(heap, (d + weight, nbr))
    raise UnreachableError(
        f"point {q.point_id} is not reachable from point {p.point_id}"
    )


def pairwise_point_distances(
    network, points: PointSet
) -> dict[tuple[int, int], float]:
    """All pairwise network distances between points.

    One multi-target Dijkstra over the augmented graph per point — the
    O(N^2) distance-matrix precomputation the paper's Section 3.2 discusses.
    Returned as a dict keyed by ordered ``(smaller_id, larger_id)`` pairs;
    unreachable pairs map to ``math.inf``.  Intended for baselines and for
    validating the traversal algorithms on small instances; see
    :class:`repro.baselines.matrix.DistanceMatrix` for the array-backed
    production variant.
    """
    aug = AugmentedView(network, points)
    ids = sorted(points.point_ids())
    out: dict[tuple[int, int], float] = {}
    for i, pid in enumerate(ids):
        later = ids[i + 1 :]
        if not later:
            break
        remaining = {point_vertex(other) for other in later}
        dist: dict = {}
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, point_vertex(pid))]
        while heap and remaining:
            d, vertex = heapq.heappop(heap)
            if vertex in dist:
                continue
            dist[vertex] = d
            remaining.discard(vertex)
            for nbr, weight in aug.neighbors(vertex):
                if nbr not in dist:
                    heapq.heappush(heap, (d + weight, nbr))
        for other in later:
            out[(pid, other)] = dist.get(point_vertex(other), math.inf)
    return out
