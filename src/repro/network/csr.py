"""Frozen CSR (compressed sparse row) network backend.

:class:`CSRNetwork` freezes a :class:`~repro.network.graph.SpatialNetwork`
(or the disk-backed :class:`~repro.storage.netstore.NetworkStore`) into
flat numpy arrays — int64 ``indptr``/``indices``, float64 ``weights``, and
a node-id ↔ row bijection sorted by node id — and serves the
:class:`~repro.network.interface.NetworkBackend` protocol plus the
optional array-native Dijkstra kernels that
:mod:`repro.network.dijkstra` duck-dispatches to.

Bit-identity contract
---------------------
The dict backend is the oracle: every kernel here must return the same
distances *to the bit*, settle nodes in the same order, and break ties
identically.  Three facts make that achievable:

* Rows are sorted by node id, so "smaller row" ≡ "smaller node id" — the
  heap tie-break of the dict path (``(distance, node)`` tuples) maps to
  lexicographic ``(distance, row)`` order.
* IEEE-754 rounding is monotone, so for positive weights the left-fold
  prefix sums along any path are nondecreasing; every correct Dijkstra —
  including scipy's C implementation — computes exactly
  ``min over paths of fl(...fl(fl(0 + w1) + w2)... + wk)``, the same
  value the dict path's ``d + weight`` folds produce.
* Per-row adjacency preserves the source network's insertion order, so
  the push-order counters that break exact distance ties in
  :func:`~repro.network.dijkstra.multi_source` advance in the same
  sequence on either backend.

The untargeted plain kernel therefore runs scipy's C Dijkstra when scipy
is importable (settle order reconstructed with a stable argsort over the
distance vector) and falls back to a portable heap loop otherwise;
targeted searches and the counted/guarded twins always run the exact
Python mirror of the dict loops so early termination, ``dijkstra.*``
counters, fault sites, budget charges, and deadline checkpoints stay
backend-invariant.

Staleness
---------
The backend captures the source network's mutation edition at freeze
time; every public access re-checks it and raises
:class:`~repro.exceptions.StaleBackendError` once the source has mutated,
rather than serving distances off arrays that no longer match the graph.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable, Iterator

import numpy as np

from repro.exceptions import (
    EdgeNotFoundError,
    NodeNotFoundError,
    ParameterError,
    StaleBackendError,
)
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.network.graph import normalize_edge
from repro.obs.core import STATE as _OBS, add as _obs_add
from repro.resilience.deadline import STATE as _RES, check as _res_check

try:  # scipy is an optional accelerator, never a hard dependency
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
except ImportError:  # pragma: no cover - exercised where scipy is absent
    _csr_matrix = None
    _scipy_dijkstra = None

__all__ = ["CSRNetwork", "resolve_backend"]


def resolve_backend(network, backend: str | None):
    """Materialise the requested backend over ``network``.

    ``None`` / ``"dict"`` return the network unchanged (the oracle path);
    ``"csr"`` freezes it into a :class:`CSRNetwork` (a no-op when it is
    one already).
    """
    if backend is None or backend == "dict":
        return network
    if backend == "csr":
        return CSRNetwork.freeze(network)
    raise ParameterError(
        f"unknown network backend {backend!r} (expected 'dict' or 'csr')"
    )


class CSRNetwork:
    """A read-only array snapshot of a spatial network.

    Build one with :meth:`freeze`; the constructor is internal.  All
    :class:`~repro.network.interface.NetworkBackend` methods preserve the
    source's iteration orders (``nodes()`` yields the source's node
    order, ``neighbors()`` the source's adjacency order), so any
    algorithm that runs on the source runs bit-identically here.
    """

    def __init__(self, source) -> None:
        if isinstance(source, CSRNetwork):
            raise ParameterError("use CSRNetwork.freeze() to reuse a frozen backend")
        self.name = getattr(source, "name", "network")
        #: The network this backend was frozen from (used by
        #: ``NetworkClusterer`` to accept point sets built on the source).
        self.source_network = source
        self._src_edition = getattr(source, "_edition", None)

        node_order = list(source.nodes())
        ids_sorted = sorted(node_order)
        row_of: dict[int, int] = {nid: r for r, nid in enumerate(ids_sorted)}
        n = len(ids_sorted)

        # Per-row adjacency in *source insertion order* (the kernels and
        # neighbors() iterate these tuples), plus the CSR triplet over
        # id-sorted rows for the scipy kernel.
        nbr_pairs: list[tuple[tuple[int, float], ...]] = [()] * n
        indptr = np.zeros(n + 1, dtype=np.int64)
        cols: list[int] = []
        wts: list[float] = []
        for nid in ids_sorted:
            row = row_of[nid]
            pairs = tuple(source.neighbors(nid))
            nbr_pairs[row] = pairs
            indptr[row + 1] = indptr[row] + len(pairs)
            cols.extend(row_of[v] for v, _ in pairs)
            wts.extend(w for _, w in pairs)

        self._node_order: tuple[int, ...] = tuple(node_order)
        self._ids = np.asarray(ids_sorted, dtype=np.int64)
        self._row_of = row_of
        self._nbr_pairs = nbr_pairs
        self._indptr = indptr
        self._indices = np.asarray(cols, dtype=np.int64)
        self._weights = np.asarray(wts, dtype=np.float64)
        self._num_edges = int(getattr(source, "num_edges", len(cols) // 2))
        self._edge_list: tuple[tuple[int, int, float], ...] = tuple(source.edges())
        self._wmap: dict[tuple[int, int], float] = {
            (u, v): w for u, v, w in self._edge_list
        }
        coords: dict[int, tuple[float, float]] = {}
        if hasattr(source, "has_coords") and hasattr(source, "node_coords"):
            for nid in node_order:
                if source.has_coords(nid):
                    coords[nid] = source.node_coords(nid)
        self._coords = coords
        self._matrix = None
        if _csr_matrix is not None and n > 0:
            self._matrix = _csr_matrix(
                (self._weights, self._indices, indptr), shape=(n, n)
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, network) -> "CSRNetwork":
        """Freeze ``network`` into a CSR snapshot (idempotent)."""
        if isinstance(network, CSRNetwork):
            network._check_stale()
            return network
        return cls(network)

    @property
    def kernel_backend(self) -> str:
        """``"scipy"`` when the C kernel serves untargeted searches, else
        ``"python"`` (the portable fallback)."""
        return "python" if self._matrix is None else "scipy"

    def _check_stale(self) -> None:
        if (
            self._src_edition is not None
            and self.source_network._edition != self._src_edition
        ):
            raise StaleBackendError(
                f"network {self.name!r} mutated after it was frozen; "
                "re-freeze with CSRNetwork.freeze() before querying"
            )

    # ------------------------------------------------------------------
    # NetworkBackend protocol
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._ids)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def has_node(self, node: int) -> bool:
        self._check_stale()
        return node in self._row_of

    def has_edge(self, u: int, v: int) -> bool:
        self._check_stale()
        if u == v:
            return False
        return normalize_edge(u, v) in self._wmap

    def nodes(self) -> Iterator[int]:
        """Iterate node ids in the *source network's* order."""
        self._check_stale()
        return iter(self._node_order)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        self._check_stale()
        return iter(self._edge_list)

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        self._check_stale()
        try:
            row = self._row_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        return iter(self._nbr_pairs[row])

    def degree(self, node: int) -> int:
        self._check_stale()
        try:
            return len(self._nbr_pairs[self._row_of[node]])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def edge_weight(self, u: int, v: int) -> float:
        self._check_stale()
        a, b = normalize_edge(u, v)
        try:
            return self._wmap[(a, b)]
        except KeyError:
            raise EdgeNotFoundError(a, b) from None

    def node_coords(self, node: int) -> tuple[float, float]:
        self._check_stale()
        if node not in self._row_of:
            raise NodeNotFoundError(node)
        try:
            return self._coords[node]
        except KeyError:
            from repro.exceptions import MissingCoordinatesError

            raise MissingCoordinatesError(node) from None

    def has_coords(self, node: int) -> bool:
        return node in self._coords

    def euclidean_node_distance(self, u: int, v: int) -> float:
        ux, uy = self.node_coords(u)
        vx, vy = self.node_coords(v)
        return math.hypot(ux - vx, uy - vy)

    def total_weight(self) -> float:
        return sum(w for _, _, w in self._edge_list)

    def __contains__(self, node: int) -> bool:
        return self.has_node(node)

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        return (
            f"CSRNetwork(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, kernel={self.kernel_backend!r})"
        )

    # ------------------------------------------------------------------
    # Internal adjacency for the kernels
    # ------------------------------------------------------------------
    def _pairs(self, node: int) -> tuple[tuple[int, float], ...]:
        try:
            return self._nbr_pairs[self._row_of[node]]
        except KeyError:
            raise NodeNotFoundError(node) from None

    # ------------------------------------------------------------------
    # Array kernel: single source
    # ------------------------------------------------------------------
    def dijkstra_single_source(
        self,
        source: int,
        targets: Iterable[int] | None = None,
        cutoff: float = math.inf,
    ) -> dict[int, float]:
        """Kernel behind :func:`repro.network.dijkstra.single_source`."""
        self._check_stale()
        if _FAULTS.engaged or _RES.engaged:
            return self._single_source_guarded(source, targets, cutoff)
        if _OBS.enabled:
            return self._single_source_counted(source, targets, cutoff)
        if self._matrix is not None and targets is None:
            return self._single_source_scipy(source, cutoff)
        return self._single_source_plain(source, targets, cutoff)

    def _single_source_scipy(self, source: int, cutoff: float) -> dict[int, float]:
        """Untargeted expansion via scipy's C Dijkstra.

        The result dict is rebuilt in settle order — ascending
        ``(distance, node id)``, which a stable argsort over the id-sorted
        rows yields directly — so even dict iteration order matches the
        heap loop's.
        """
        row = self._row_of.get(source)
        if row is None:
            raise NodeNotFoundError(source)
        d = _scipy_dijkstra(self._matrix, directed=True, indices=row)
        if cutoff is math.inf or cutoff == math.inf:
            mask = np.isfinite(d)
        else:
            mask = d <= cutoff
            mask[row] = True  # the seed settles even under cutoff < 0
        sel = np.flatnonzero(mask)
        order = sel[np.argsort(d[sel], kind="stable")]
        return dict(zip(self._ids[order].tolist(), d[order].tolist()))

    def _single_source_plain(
        self, source: int, targets: Iterable[int] | None, cutoff: float
    ) -> dict[int, float]:
        # Exact mirror of the dict backend's plain loop (early target
        # termination included), iterating the frozen adjacency tuples.
        pairs = self._nbr_pairs
        row_of = self._row_of
        remaining = set(targets) if targets is not None else None
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    heapq.heappush(heap, (nd, nbr))
        return dist

    def _single_source_counted(
        self, source: int, targets: Iterable[int] | None, cutoff: float
    ) -> dict[int, float]:
        pairs = self._nbr_pairs
        row_of = self._row_of
        remaining = set(targets) if targets is not None else None
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        pops = 0
        pushes = 1  # the seed entry
        relaxed = 0
        while heap:
            d, node = heapq.heappop(heap)
            pops += 1
            if node in dist:
                continue
            dist[node] = d
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                relaxed += 1
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    heapq.heappush(heap, (nd, nbr))
                    pushes += 1
        _obs_add("dijkstra.runs")
        _obs_add("dijkstra.heap_pops", pops)
        _obs_add("dijkstra.heap_pushes", pushes)
        _obs_add("dijkstra.edges_relaxed", relaxed)
        _obs_add("dijkstra.nodes_settled", len(dist))
        return dist

    def _single_source_guarded(
        self, source: int, targets: Iterable[int] | None, cutoff: float
    ) -> dict[int, float]:
        pairs = self._nbr_pairs
        row_of = self._row_of
        budget = _FAULTS.budget
        remaining = set(targets) if targets is not None else None
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        pops = 0
        pushes = 1
        relaxed = 0
        while heap:
            d, node = heapq.heappop(heap)
            pops += 1
            if node in dist:
                continue
            _fault("dijkstra.settle")
            if _RES.engaged:
                _res_check("dijkstra.settle", partial=dist)
            if budget is not None:
                budget.spend_expansions(1, partial=dist)
            dist[node] = d
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                relaxed += 1
                if budget is not None:
                    budget.spend_distance_computations(1, partial=dist)
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    heapq.heappush(heap, (nd, nbr))
                    pushes += 1
        if _OBS.enabled:
            _obs_add("dijkstra.runs")
            _obs_add("dijkstra.heap_pops", pops)
            _obs_add("dijkstra.heap_pushes", pushes)
            _obs_add("dijkstra.edges_relaxed", relaxed)
            _obs_add("dijkstra.nodes_settled", len(dist))
        return dist

    # ------------------------------------------------------------------
    # Array kernel: single source with predecessors
    # ------------------------------------------------------------------
    def dijkstra_single_source_with_paths(
        self, source: int, cutoff: float = math.inf
    ) -> tuple[dict[int, float], dict[int, int]]:
        """Kernel behind :func:`repro.network.dijkstra.single_source_with_paths`."""
        self._check_stale()
        if _FAULTS.engaged or _RES.engaged:
            return self._with_paths_guarded(source, cutoff)
        if _OBS.enabled:
            return self._with_paths_counted(source, cutoff)
        pairs = self._nbr_pairs
        row_of = self._row_of
        dist: dict[int, float] = {}
        pred: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = [(0.0, source, source)]
        while heap:
            d, node, parent = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            if node != source:
                pred[node] = parent
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    heapq.heappush(heap, (nd, nbr, node))
        return dist, pred

    def _with_paths_counted(
        self, source: int, cutoff: float
    ) -> tuple[dict[int, float], dict[int, int]]:
        pairs = self._nbr_pairs
        row_of = self._row_of
        dist: dict[int, float] = {}
        pred: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = [(0.0, source, source)]
        pops = 0
        pushes = 1  # the seed entry
        relaxed = 0
        while heap:
            d, node, parent = heapq.heappop(heap)
            pops += 1
            if node in dist:
                continue
            dist[node] = d
            if node != source:
                pred[node] = parent
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                relaxed += 1
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    heapq.heappush(heap, (nd, nbr, node))
                    pushes += 1
        _obs_add("dijkstra.runs")
        _obs_add("dijkstra.heap_pops", pops)
        _obs_add("dijkstra.heap_pushes", pushes)
        _obs_add("dijkstra.edges_relaxed", relaxed)
        _obs_add("dijkstra.nodes_settled", len(dist))
        return dist, pred

    def _with_paths_guarded(
        self, source: int, cutoff: float
    ) -> tuple[dict[int, float], dict[int, int]]:
        pairs = self._nbr_pairs
        row_of = self._row_of
        budget = _FAULTS.budget
        dist: dict[int, float] = {}
        pred: dict[int, int] = {}
        heap: list[tuple[float, int, int]] = [(0.0, source, source)]
        pops = 0
        pushes = 1
        relaxed = 0
        while heap:
            d, node, parent = heapq.heappop(heap)
            pops += 1
            if node in dist:
                continue
            _fault("dijkstra.settle")
            if _RES.engaged:
                _res_check("dijkstra.settle", partial=dist)
            if budget is not None:
                budget.spend_expansions(1, partial=dist)
            dist[node] = d
            if node != source:
                pred[node] = parent
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                relaxed += 1
                if budget is not None:
                    budget.spend_distance_computations(1, partial=dist)
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    heapq.heappush(heap, (nd, nbr, node))
                    pushes += 1
        if _OBS.enabled:
            _obs_add("dijkstra.runs")
            _obs_add("dijkstra.heap_pops", pops)
            _obs_add("dijkstra.heap_pushes", pushes)
            _obs_add("dijkstra.edges_relaxed", relaxed)
            _obs_add("dijkstra.nodes_settled", len(dist))
        return dist, pred

    # ------------------------------------------------------------------
    # Array kernel: concurrent multi-source expansion
    # ------------------------------------------------------------------
    def dijkstra_multi_source(
        self,
        entries: list[tuple[float, int, object]],
        cutoff: float = math.inf,
    ) -> tuple[dict[int, float], dict[int, object]]:
        """Kernel behind :func:`repro.network.dijkstra.multi_source`.

        Always the exact Python mirror: the concurrent expansion breaks
        exact-distance ties with a push-order counter, a discipline no
        batch C kernel reproduces, so this loop *is* the semantics.  The
        frozen adjacency tuples keep the counter sequence identical to
        the dict backend's.
        """
        self._check_stale()
        if _FAULTS.engaged or _RES.engaged:
            return self._multi_source_guarded(entries, cutoff)
        if _OBS.enabled:
            return self._multi_source_counted(entries, cutoff)
        pairs = self._nbr_pairs
        row_of = self._row_of
        dist: dict[int, float] = {}
        label: dict[int, object] = {}
        counter = 0
        heap: list[tuple[float, int, int, object]] = []
        for d0, node, lab in entries:
            if d0 <= cutoff:
                heap.append((d0, counter, node, lab))
                counter += 1
        heapq.heapify(heap)
        while heap:
            d, _, node, lab = heapq.heappop(heap)
            if node in dist:
                continue
            dist[node] = d
            label[node] = lab
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    counter += 1
                    heapq.heappush(heap, (nd, counter, nbr, lab))
        return dist, label

    def _multi_source_counted(
        self, entries: list[tuple[float, int, object]], cutoff: float
    ) -> tuple[dict[int, float], dict[int, object]]:
        pairs = self._nbr_pairs
        row_of = self._row_of
        dist: dict[int, float] = {}
        label: dict[int, object] = {}
        counter = 0
        heap: list[tuple[float, int, int, object]] = []
        for d0, node, lab in entries:
            if d0 <= cutoff:
                heap.append((d0, counter, node, lab))
                counter += 1
        heapq.heapify(heap)
        pops = 0
        pushes = len(heap)
        relaxed = 0
        while heap:
            d, _, node, lab = heapq.heappop(heap)
            pops += 1
            if node in dist:
                continue
            dist[node] = d
            label[node] = lab
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                relaxed += 1
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    counter += 1
                    heapq.heappush(heap, (nd, counter, nbr, lab))
                    pushes += 1
        _obs_add("dijkstra.multi_source_runs")
        _obs_add("dijkstra.heap_pops", pops)
        _obs_add("dijkstra.heap_pushes", pushes)
        _obs_add("dijkstra.edges_relaxed", relaxed)
        _obs_add("dijkstra.nodes_settled", len(dist))
        return dist, label

    def _multi_source_guarded(
        self, entries: list[tuple[float, int, object]], cutoff: float
    ) -> tuple[dict[int, float], dict[int, object]]:
        pairs = self._nbr_pairs
        row_of = self._row_of
        budget = _FAULTS.budget
        dist: dict[int, float] = {}
        label: dict[int, object] = {}
        counter = 0
        heap: list[tuple[float, int, int, object]] = []
        for d0, node, lab in entries:
            if d0 <= cutoff:
                heap.append((d0, counter, node, lab))
                counter += 1
        heapq.heapify(heap)
        pops = 0
        pushes = len(heap)
        relaxed = 0
        while heap:
            d, _, node, lab = heapq.heappop(heap)
            pops += 1
            if node in dist:
                continue
            _fault("dijkstra.settle")
            if _RES.engaged:
                _res_check("dijkstra.settle", partial=(dist, label))
            if budget is not None:
                budget.spend_expansions(1, partial=(dist, label))
            dist[node] = d
            label[node] = lab
            try:
                row = row_of[node]
            except KeyError:
                raise NodeNotFoundError(node) from None
            for nbr, weight in pairs[row]:
                relaxed += 1
                if budget is not None:
                    budget.spend_distance_computations(1, partial=(dist, label))
                if nbr in dist:
                    continue
                nd = d + weight
                if nd <= cutoff:
                    counter += 1
                    heapq.heappush(heap, (nd, counter, nbr, lab))
                    pushes += 1
        if _OBS.enabled:
            _obs_add("dijkstra.multi_source_runs")
            _obs_add("dijkstra.heap_pops", pops)
            _obs_add("dijkstra.heap_pushes", pushes)
            _obs_add("dijkstra.edges_relaxed", relaxed)
            _obs_add("dijkstra.nodes_settled", len(dist))
        return dist, label
