"""Objects (points) located on the edges of a spatial network.

Per Definition 1 of the paper, an object lies on exactly one edge ``e`` and
its position is the triplet ``<n_i, n_j, pos>`` with ``n_i < n_j`` and
``pos`` in ``[0, W(e)]`` being the distance of the object from ``n_i`` along
the edge.

:class:`NetworkPoint` is the immutable object record and :class:`PointSet`
stores a collection of points *grouped by edge and sorted by offset* — the
same physical organisation as the paper's points flat file ("for the points
on the same edge, IDs are sequential and their position offsets are in
ascending order"), which is what the traversal-based algorithms (ε-Link,
Single-Link) rely on to walk an edge point-by-point.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidPositionError,
    PointNotFoundError,
)
from repro.network.graph import SpatialNetwork, normalize_edge

__all__ = ["NetworkPoint", "PointSet"]

# Offsets within this absolute tolerance of the edge ends are clamped, so
# that generators producing pos = W(e) + 1e-15 via float rounding still yield
# valid placements.
_POSITION_TOLERANCE = 1e-9


class NetworkPoint:
    """An immutable object located on a network edge.

    Attributes
    ----------
    point_id:
        Unique integer identifier.
    u, v:
        Canonical edge endpoints, ``u < v``.
    offset:
        Distance of the point from ``u`` along the edge, in ``[0, W(u, v)]``.
    label:
        Optional ground-truth cluster label (used by the synthetic data
        generator and the effectiveness experiments); ``None`` if unknown.
        By convention the generator uses ``-1`` for planted outliers.
    """

    __slots__ = ("point_id", "u", "v", "offset", "label")

    def __init__(
        self,
        point_id: int,
        u: int,
        v: int,
        offset: float,
        label: int | None = None,
    ) -> None:
        a, b = normalize_edge(u, v)
        if (a, b) != (u, v):
            # Caller gave the edge in reverse order: mirror the offset so the
            # physical location is preserved.  We cannot do that without the
            # edge weight, so insist on canonical input instead.
            raise InvalidPositionError(
                f"point {point_id}: edge must be given in canonical order "
                f"({a}, {b}), got ({u}, {v})"
            )
        object.__setattr__(self, "point_id", int(point_id))
        object.__setattr__(self, "u", int(u))
        object.__setattr__(self, "v", int(v))
        object.__setattr__(self, "offset", float(offset))
        object.__setattr__(self, "label", label)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("NetworkPoint is immutable")

    @property
    def edge(self) -> tuple[int, int]:
        """The canonical edge ``(u, v)`` the point lies on."""
        return (self.u, self.v)

    def coords(self, network: SpatialNetwork) -> tuple[float, float]:
        """Interpolated planar coordinates of the point (needs node coords).

        The interpolation is linear along the straight segment between the
        endpoints; it is used only for visualisation and for the Euclidean
        baseline, never by the network-distance algorithms.
        """
        ux, uy = network.node_coords(self.u)
        vx, vy = network.node_coords(self.v)
        weight = network.edge_weight(self.u, self.v)
        t = 0.0 if weight == 0 else min(max(self.offset / weight, 0.0), 1.0)
        return (ux + t * (vx - ux), uy + t * (vy - uy))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkPoint):
            return NotImplemented
        return (
            self.point_id == other.point_id
            and self.u == other.u
            and self.v == other.v
            and self.offset == other.offset
        )

    def __hash__(self) -> int:
        return hash((self.point_id, self.u, self.v, self.offset))

    def __repr__(self) -> str:
        return (
            f"NetworkPoint(id={self.point_id}, edge=({self.u}, {self.v}), "
            f"offset={self.offset:.4g})"
        )


class PointSet:
    """A collection of :class:`NetworkPoint` grouped by edge.

    Points on the same edge are kept sorted by ascending offset, mirroring
    the point-group organisation of the paper's points file.  All placements
    are validated against the network's edges and weights.

    Parameters
    ----------
    network:
        The network the points lie on.  Held by reference; the point set does
        not modify it.
    """

    def __init__(self, network: SpatialNetwork) -> None:
        self._network = network
        self._by_id: dict[int, NetworkPoint] = {}
        # edge -> list of points sorted by offset (ties broken by point id,
        # which keeps insertion deterministic).
        self._by_edge: dict[tuple[int, int], list[NetworkPoint]] = {}
        #: Bumped on every mutation; consumers that memoise anything derived
        #: from the point set (edge indexes, distance caches, landmark
        #: tables) compare it against the version they captured and drop
        #: their state when it moved — see ``AugmentedView.invalidate``.
        self.version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def network(self) -> SpatialNetwork:
        """The underlying spatial network."""
        return self._network

    def add(
        self,
        u: int,
        v: int,
        offset: float,
        point_id: int | None = None,
        label: int | None = None,
    ) -> NetworkPoint:
        """Place a new point on edge ``(u, v)`` at ``offset`` from ``min(u, v)``.

        ``offset`` may be given relative to either order of the endpoints:
        if ``u > v`` the pair is canonicalised and the offset mirrored, so
        ``add(5, 2, 1.0)`` places the point 1.0 from node 5.

        Returns the created :class:`NetworkPoint`.
        """
        a, b = normalize_edge(u, v)
        weight = self._network.edge_weight(a, b)  # raises if edge missing
        offset = float(offset)
        if (u, v) != (a, b):
            offset = weight - offset
        if offset < -_POSITION_TOLERANCE or offset > weight + _POSITION_TOLERANCE:
            raise InvalidPositionError(
                f"offset {offset!r} outside [0, {weight!r}] on edge ({a}, {b})"
            )
        offset = min(max(offset, 0.0), weight)
        if point_id is None:
            point_id = len(self._by_id)
            while point_id in self._by_id:
                point_id += 1
        elif point_id in self._by_id:
            raise InvalidPositionError(f"point id {point_id} already in use")
        point = NetworkPoint(point_id, a, b, offset, label=label)
        self._by_id[point_id] = point
        group = self._by_edge.setdefault((a, b), [])
        bisect.insort(group, point, key=lambda p: (p.offset, p.point_id))
        self.version += 1
        return point

    @classmethod
    def from_points(
        cls, network: SpatialNetwork, points: Iterable[NetworkPoint]
    ) -> "PointSet":
        """Build a point set from existing :class:`NetworkPoint` records."""
        ps = cls(network)
        for p in points:
            ps.add(p.u, p.v, p.offset, point_id=p.point_id, label=p.label)
        return ps

    def remove(self, point_id: int) -> None:
        """Remove a point by id."""
        point = self.get(point_id)
        del self._by_id[point_id]
        group = self._by_edge[point.edge]
        group.remove(point)
        if not group:
            del self._by_edge[point.edge]
        self.version += 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, point_id: int) -> NetworkPoint:
        """The point with the given id (raises :class:`PointNotFoundError`)."""
        try:
            return self._by_id[point_id]
        except KeyError:
            raise PointNotFoundError(point_id) from None

    def __contains__(self, point_id: int) -> bool:
        return point_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[NetworkPoint]:
        return iter(self._by_id.values())

    def point_ids(self) -> Iterator[int]:
        return iter(self._by_id)

    def populated_edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over the canonical edges that carry at least one point."""
        return iter(self._by_edge)

    def num_populated_edges(self) -> int:
        return len(self._by_edge)

    def points_on_edge(self, u: int, v: int) -> list[NetworkPoint]:
        """Points on edge ``(u, v)`` sorted by ascending offset from min(u, v).

        Returns an empty list when the edge carries no points.  Raises if the
        edge does not exist in the network at all, since asking for points on
        a non-edge is almost always a caller bug.
        """
        a, b = normalize_edge(u, v)
        if not self._network.has_edge(a, b):
            raise EdgeNotFoundError(a, b)
        return list(self._by_edge.get((a, b), ()))

    def points_from(self, node: int, other: int) -> list[NetworkPoint]:
        """Points on edge ``(node, other)`` ordered walking *away from* ``node``.

        This is the "next point on (n_x, n_y) from ... to ..." primitive of
        the paper's ε-Link and Single-Link pseudocode.
        """
        pts = self.points_on_edge(node, other)
        if node > other:
            pts.reverse()
        return pts

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def labels(self) -> dict[int, int | None]:
        """Ground-truth label per point id (``None`` where unknown)."""
        return {pid: p.label for pid, p in self._by_id.items()}

    def distance_to_node(self, point: NetworkPoint, node: int) -> float:
        """Direct distance ``d_L(p, n)`` from a point to an adjacent node.

        Defined only when ``node`` is an endpoint of the point's edge
        (Definition 2); raises :class:`InvalidPositionError` otherwise.
        """
        if node == point.u:
            return point.offset
        if node == point.v:
            return self._network.edge_weight(point.u, point.v) - point.offset
        raise InvalidPositionError(
            f"node {node} is not an endpoint of the edge of point {point.point_id}"
        )

    def __repr__(self) -> str:
        return (
            f"PointSet(points={len(self)}, populated_edges="
            f"{self.num_populated_edges()}, network={self._network.name!r})"
        )
