#!/usr/bin/env python3
"""Live cluster maintenance: restaurants opening and closing.

A location-based service doesn't re-cluster the city every time one
restaurant opens.  `IncrementalEpsLink` maintains the ε-Link clustering
under point insertions and deletions — each update touches only the
affected region, and the result is always identical to re-clustering from
scratch (that invariant is property-tested in the suite; this demo
spot-checks it live).

The scenario: a quiet street gentrifies — restaurants open one by one until
two separate dining scenes fuse into one strip; then the anchor restaurant
in the middle closes and the strip splits again.

Run:  python examples/live_maintenance.py
"""

from __future__ import annotations

from repro import EpsLink, SpatialNetwork
from repro.core.incremental import IncrementalEpsLink


def check_against_scratch(live: IncrementalEpsLink, network) -> None:
    scratch = EpsLink(network, live.points, eps=live.eps).run()
    assert live.result().same_clustering(scratch), "maintenance drifted!"


def main() -> None:
    # A single main street, 1 km long; eps = 120 m walking distance.
    street = SpatialNetwork.from_edge_list([(1, 2, 1000.0)], name="main-street")
    live = IncrementalEpsLink(street, eps=120.0)

    print("opening restaurants west end:   ", end="")
    for pos in (100, 180, 260):
        live.insert(1, 2, pos)
    print(f"{live.num_clusters} scene(s)")

    print("opening restaurants east end:   ", end="")
    for pos in (700, 790, 870):
        live.insert(1, 2, pos)
    print(f"{live.num_clusters} scene(s)")
    check_against_scratch(live, street)

    print("gentrification fills the middle: ", end="")
    bridge_ids = []
    for pos in (370, 480, 590):
        bridge_ids.append(live.insert(1, 2, pos).point_id)
    print(f"{live.num_clusters} scene(s)  <- one dining strip")
    assert live.num_clusters == 1
    check_against_scratch(live, street)

    print("the anchor at 480m closes:       ", end="")
    live.remove(bridge_ids[1])
    print(f"{live.num_clusters} scene(s)  <- the strip splits")
    assert live.num_clusters == 2
    check_against_scratch(live, street)

    sizes = sorted(live.result().sizes().values())
    print(f"\nfinal scenes: {sizes[0]} and {sizes[1]} restaurants "
          f"({len(live)} total), maintained through "
          f"{len(live) + 1} updates without any full re-clustering")


if __name__ == "__main__":
    main()
