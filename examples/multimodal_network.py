#!/usr/bin/env python3
"""Clusters across combined networks (paper Section 6).

"Another application is the discovery of clusters across different networks
(e.g., a road network and a river/canal network) by combining both of them.
For this, we can define transition edges that connect pairs of points from
the networks (e.g., piers)."

This example combines a coastal road network with a ferry network.  Two
harbour districts — one with objects on the roads, one with objects on the
ferry routes — are joined by a pier with a cheap transition.  Clustering the
combined network discovers a single cluster containing objects from *both*
networks, which neither network alone could produce.

Run:  python examples/multimodal_network.py
"""

from __future__ import annotations

from repro import EpsLink, PointSet, SpatialNetwork
from repro.network.multinet import Transition, combine_networks, split_edge


def build_road_network() -> SpatialNetwork:
    """A 6-node coastal road along the shore (node 5 hosts the pier)."""
    net = SpatialNetwork(name="coastal-road")
    for i in range(6):
        net.add_node(i, x=float(i), y=0.0)
    for i in range(5):
        net.add_edge(i, i + 1, 1.0)
    return net


def build_ferry_network() -> SpatialNetwork:
    """Ferry routes between three islands; node 0 is the mainland pier."""
    net = SpatialNetwork(name="ferry")
    coords = {0: (5.0, 0.5), 1: (5.5, 1.5), 2: (6.5, 1.2), 3: (6.0, 2.5)}
    for node, (x, y) in coords.items():
        net.add_node(node, x=x, y=y)
    net.add_edge(0, 1, 1.0)
    net.add_edge(1, 2, 1.0)
    net.add_edge(1, 3, 1.0)
    return net


def main() -> None:
    road = build_road_network()
    ferry = build_ferry_network()

    # Harbour-district objects on the road, near the pier end.
    road_pts = PointSet(road)
    road_pts.add(3, 4, 0.6, label=0)
    road_pts.add(4, 5, 0.3, label=0)
    road_pts.add(4, 5, 0.9, label=0)
    # A far-away object at the other end of the road.
    road_pts.add(0, 1, 0.2, label=1)

    # Objects on the ferry routes near the pier.
    ferry_pts = PointSet(ferry)
    ferry_pts.add(0, 1, 0.3, label=0)
    ferry_pts.add(0, 1, 0.8, label=0)
    # And one far out at the last island.
    ferry_pts.add(1, 3, 0.9, label=2)

    # The pier: road node 5 <-> ferry node 0, boarding cost 0.2.
    combo = combine_networks(
        [road, ferry],
        [Transition(from_net=0, from_node=5, to_net=1, to_node=0, weight=0.2)],
        name="road+ferry",
    )
    merged = combo.merge_point_sets([road_pts, ferry_pts])
    print(f"Combined network: {combo.network.num_nodes} nodes "
          f"({road.num_nodes} road + {ferry.num_nodes} ferry), "
          f"{combo.network.num_edges} edges incl. 1 pier transition")
    print(f"Objects: {len(merged)} ({len(road_pts)} on roads, "
          f"{len(ferry_pts)} on ferry routes)\n")

    result = EpsLink(combo.network, merged, eps=1.0).run()
    print(f"eps-Link on the combined network (eps=1.0): "
          f"{result.num_clusters} clusters")
    road_ids = {p.point_id for p in combo.translate_points(0, road_pts)}
    for label, members in sorted(result.clusters().items()):
        origins = sorted({"road" if m in road_ids else "ferry" for m in members})
        print(f"  cluster {label}: {len(members)} objects from {'/'.join(origins)}")

    harbour = max(result.clusters().values(), key=len)
    origins = {"road" if m in road_ids else "ferry" for m in harbour}
    assert origins == {"road", "ferry"}, "the harbour cluster must span both networks"
    print("\nThe harbour cluster spans both networks: objects on the road and "
          "on the ferry\nroutes are within eps of each other *through the pier*.")

    # Mid-edge piers are supported too: split the edge first.
    road2 = build_road_network()
    pier_node = split_edge(road2, 2, 3, 0.5)
    print(f"\n(mid-edge pier demo: split road edge (2,3) at 0.5 "
          f"-> new junction node {pier_node})")


if __name__ == "__main__":
    main()
