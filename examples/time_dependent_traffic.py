#!/usr/bin/env python3
"""Time-parameterized clusters under rush-hour traffic (paper Section 6).

"An advanced problem is the discovery of time-dependent clusters in a model,
where edge weights vary with time.  For example, traffic on a road segment
depends on the time of the day ... we can derive clusters whose content is
time-parameterized."

A commercial strip runs along an arterial road whose *travel time* triples
at rush hour.  Off-peak, shops on both sides of the arterial form one big
cluster; at 8am the congested crossing pushes their travel-time distance
over eps and the cluster splits into two.

Run:  python examples/time_dependent_traffic.py
"""

from __future__ import annotations

from repro import EpsLink, PointSet, SpatialNetwork
from repro.network.timedep import (
    TimeDependentNetwork,
    rush_hour_profile,
    time_parameterized_clusters,
)


def main() -> None:
    # A simple commercial district: two side streets joined by one arterial
    # segment.  Weights are off-peak travel times (minutes).
    net = SpatialNetwork(name="district")
    coords = {0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0), 4: (4, 0), 5: (5, 0)}
    for node, (x, y) in coords.items():
        net.add_node(node, x=float(x), y=float(y))
    for u, v in [(0, 1), (1, 2), (3, 4), (4, 5)]:
        net.add_edge(u, v, 2.0)  # side streets: 2 minutes each
    net.add_edge(2, 3, 3.0)  # the arterial crossing: 3 minutes off-peak

    # Shops along both side streets.
    shops = PointSet(net)
    for edge, offsets in {(1, 2): (0.5, 1.5), (3, 4): (0.5, 1.5)}.items():
        for off in offsets:
            shops.add(edge[0], edge[1], off)

    # The arterial's travel time spikes 3x around 8:00 and 18:00.
    tdn = TimeDependentNetwork(
        net, {(2, 3): rush_hour_profile(3.0, peak_factor=3.0, peaks=(8.0, 18.0))}
    )

    times = [3.0, 6.5, 8.0, 12.0, 18.0, 21.0]
    results = time_parameterized_clusters(
        tdn, shops, times,
        clusterer_factory=lambda n, p: EpsLink(n, p, eps=5.0),
    )

    print("Travel-time clustering of 4 shops, eps = 5 minutes")
    print(f"{'time of day':>12} {'crossing (min)':>15} {'clusters':>9}")
    for t in times:
        crossing = tdn.weight_at(2, 3, t)
        print(f"{t:>11.1f}h {crossing:>15.1f} {results[t].num_clusters:>9}")

    assert results[12.0].num_clusters == 1, "off-peak: one district"
    assert results[8.0].num_clusters == 2, "rush hour: split by congestion"
    print(
        "\nOff-peak the whole strip is one cluster; at rush hour the "
        "congested arterial\nsplits it - the paper's time-parameterized "
        "clusters."
    )


if __name__ == "__main__":
    main()
