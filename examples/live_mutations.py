#!/usr/bin/env python3
"""Durable live mutations: a day of traffic and churn, crash included.

A delivery fleet moves through a small road grid over one simulated day.
Vans appear and disappear (point churn) while rush hour inflates the
arterial's travel time and the evening relaxes it again (edge reweighs).
Every mutation is fsynced to a write-ahead log *before* it is
acknowledged, and the incrementally maintained eps-Link clustering is
updated in place — so the printed epoch/cluster evolution is exactly
what `repro serve --wal` would answer over the wire.

The finale is the durability claim itself: the session is dropped
without ceremony, the log is reopened cold, and replay rebuilds a
bit-identical snapshot — same epoch, same clusters, same assignment.

Run:  python examples/live_mutations.py
"""

from __future__ import annotations

from repro import SpatialNetwork
from repro.live import LiveSession, WriteAheadLog
from repro.network.timedep import rush_hour_profile

WAL_PATH = "fleet.wal"
EPS = 4.0


def build_city() -> SpatialNetwork:
    """Two depot streets joined by one arterial crossing (minutes)."""
    net = SpatialNetwork(name="delivery-city")
    coords = {0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0), 4: (4, 0), 5: (5, 0)}
    for node, (x, y) in coords.items():
        net.add_node(node, x=float(x), y=float(y))
    for u, v in [(0, 1), (1, 2), (3, 4), (4, 5)]:
        net.add_edge(u, v, 2.0)
    net.add_edge(2, 3, 3.0)  # the arterial: 3 minutes off-peak
    return net


def main() -> None:
    net = build_city()
    session = LiveSession(net, eps=EPS, wal=WriteAheadLog(WAL_PATH))

    # The arterial's travel time through the day, straight from the
    # Section 6 traffic model; every change is a durable reweigh_edge.
    arterial = rush_hour_profile(3.0, peak_factor=3.0, peaks=(8.0, 18.0))

    # Hourly schedule: (time of day, vans arriving, vans leaving).  The
    # point ids come back in the insert acks, so departures name a van
    # by arrival order rather than guessing ids.
    schedule = [
        (6.0, [(1, 2, 0.5), (1, 2, 1.5)], 0),
        (7.0, [(3, 4, 0.5), (3, 4, 1.5)], 0),
        (8.0, [(2, 3, 1.0)], 0),           # one van caught on the arterial
        (10.0, [], 1),                     # it clears the crossing
        (12.0, [(0, 1, 1.0)], 0),
        (18.0, [], 1),
        (21.0, [], 0),
    ]

    fleet: list[int] = []
    clusters_at: dict[float, int] = {}
    print(f"Delivery fleet over one day, eps = {EPS:.0f} minutes")
    print(f"{'time':>6} {'arterial':>9} {'epoch':>6} {'vans':>5} "
          f"{'clusters':>9}")
    for t, arrivals, leaving in schedule:
        ack = session.mutate({
            "kind": "reweigh_edge", "u": 2, "v": 3,
            "weight": round(arterial(t), 3),
        })
        for u, v, off in arrivals:
            ack = session.mutate({
                "kind": "insert_point", "u": u, "v": v, "offset": off,
            })
            fleet.append(ack["point_id"])
        for _ in range(leaving):
            ack = session.mutate({
                "kind": "remove_point", "point_id": fleet.pop(),
            })
        snap = session.snapshot()
        clusters_at[t] = snap["num_clusters"]
        print(f"{t:>5.0f}h {net.edge_weight(2, 3):>9.1f} {ack['epoch']:>6} "
              f"{snap['num_points']:>5} {snap['num_clusters']:>9}")

    final = session.snapshot()
    health = session.stats()["wal"]
    session.close()

    # Rush hour split the fleet across the congested arterial; the calm
    # evening merged it back.
    assert clusters_at[8.0] == 2, "morning rush: split at the arterial"
    assert clusters_at[12.0] == 1, "midday: one connected fleet"
    assert clusters_at[18.0] == 2, "evening rush: split again"
    assert final["num_clusters"] == 1, "night: merged back"

    # The crash test: no flush, no handover — just reopen the log cold
    # and replay.  Every acknowledged mutation must come back, bit for
    # bit.
    replica = LiveSession(
        build_city(), eps=EPS, wal=WriteAheadLog(WAL_PATH, read_only=True)
    )
    replayed = replica.replay_wal()
    rebuilt = replica.snapshot()
    replica.close()
    assert replayed == health["last_seq"], "replay covers the whole log"
    assert rebuilt == final, "replayed snapshot is bit-identical"

    print(f"\nLog {WAL_PATH}: {health['appended']} mutation(s) fsynced, "
          f"last epoch {health['last_seq']}.")
    print(f"Cold replay of {replayed} record(s) rebuilt epoch "
          f"{rebuilt['epoch']} with {rebuilt['num_clusters']} cluster(s) — "
          "bit-identical to the live session.")


if __name__ == "__main__":
    main()
