#!/usr/bin/env python3
"""Parameter-free workflow: estimate ε from the data, or skip choosing it.

The paper notes that picking ε and MinPts "is hard ... a possible way to
solve this problem is to use a value determined by the user's experience, or
by sampling on the network edges" — and cites OPTICS as the systematic
remedy.  This example shows both, and renders the artefacts to SVG:

1. estimate ε by sampling network k-distances (`repro.eval.estimate_eps`)
   and cluster with ε-Link;
2. compute one OPTICS ordering and extract clusterings at several ε without
   re-running anything; inspect the reachability plot;
3. write `optics_map.svg` (the clustered city) and `reachability.svg`.

Run:  python examples/optics_parameter_free.py
"""

from __future__ import annotations

from repro import EpsLink, NetworkOPTICS
from repro.datagen import ClusterSpec, generate_clustered_points, grid_city, suggest_eps
from repro.datagen.clusters import well_separated_seed_edges
from repro.eval import adjusted_rand_index, estimate_eps
from repro.viz import render_network_svg, render_reachability_svg


def main() -> None:
    network = grid_city(22, 22, removal=0.12, seed=31)
    spec = ClusterSpec(k=5, s_init=0.02, outlier_fraction=0.02)
    seeds = well_separated_seed_edges(network, 5, seed=32)
    points = generate_clustered_points(network, 1200, spec, seed=33, seed_edges=seeds)
    truth = {p.point_id: p.label for p in points}
    true_eps = suggest_eps(spec)
    print(f"Workload: {len(points)} objects, 5 planted clusters "
          f"(generator's own eps = {true_eps:.3f})")

    # --- Route 1: estimate eps by sampling, then eps-Link. -----------------
    eps_hat = estimate_eps(network, points, min_pts=2, quantile=0.9, seed=1)
    result = EpsLink(network, points, eps=eps_hat, min_sup=3).run()
    ari = adjusted_rand_index(truth, dict(result.assignment), noise="drop")
    print(f"\nestimated eps = {eps_hat:.3f} -> eps-Link finds "
          f"{result.num_clusters} clusters, ARI {ari:.3f}")

    # --- Route 2: one OPTICS ordering, many extractions. -------------------
    optics = NetworkOPTICS(network, points, max_eps=4 * true_eps, min_pts=3).compute()
    print("\nOPTICS ordering computed once; extractions:")
    print(f"{'eps':>8} {'clusters':>9} {'ARI':>7}")
    for factor in (0.5, 1.0, 2.0, 3.5):
        eps = factor * true_eps
        flat = optics.extract_dbscan(eps)
        ari = adjusted_rand_index(truth, dict(flat.assignment), noise="drop")
        print(f"{eps:>8.3f} {flat.num_clusters:>9} {ari:>7.3f}")

    # --- Artefacts. ---------------------------------------------------------
    render_network_svg(
        network, points, assignment=result.assignment,
        path="optics_map.svg", title="eps-Link with estimated eps",
    )
    render_reachability_svg(
        optics.reachability_plot(), max_eps=4 * true_eps,
        path="reachability.svg",
    )
    print("\nwrote optics_map.svg and reachability.svg "
          "(valleys in the plot = clusters)")


if __name__ == "__main__":
    main()
