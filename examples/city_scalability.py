#!/usr/bin/env python3
"""Scalability snapshot: the paper's Figure 13/14 cost behaviour, live.

Runs the four algorithms over growing point counts (fixed network) and
growing networks (fixed point count), printing the cost tables whose shapes
the paper reports:

* DBSCAN / ε-Link cost grows with N; k-medoids / Single-Link barely move
  (they traverse the network, touching the points only lightly);
* k-medoids / Single-Link cost grows with |V|; the density-based methods
  grow slowly (they only visit the populated region).

This is the quick interactive version; ``benchmarks/`` holds the full
pytest-benchmark reproductions.

Run:  python examples/city_scalability.py
"""

from __future__ import annotations

import time

from repro import EpsLink, NetworkDBSCAN, NetworkKMedoids, SingleLink
from repro.datagen import ClusterSpec, generate_clustered_points, grid_city, suggest_eps


def run_all(network, points, spec) -> dict[str, float]:
    eps = suggest_eps(spec)
    timings: dict[str, float] = {}
    algos = {
        "k-medoids": lambda: NetworkKMedoids(
            network, points, k=spec.k, seed=0, max_bad_swaps=5
        ),
        "DBSCAN": lambda: NetworkDBSCAN(network, points, eps=eps, min_pts=2),
        "eps-Link": lambda: EpsLink(network, points, eps=eps),
        "Single-Link": lambda: SingleLink(network, points, delta=0.7 * eps),
    }
    for name, make in algos.items():
        start = time.perf_counter()
        make().run()
        timings[name] = time.perf_counter() - start
    return timings


def print_table(title: str, rows: list[tuple[str, dict[str, float]]]) -> None:
    names = ["k-medoids", "DBSCAN", "eps-Link", "Single-Link"]
    print(f"\n{title}")
    print(f"{'':>14}" + "".join(f"{n:>13}" for n in names))
    for label, timings in rows:
        print(f"{label:>14}" + "".join(f"{timings[n]:>12.2f}s" for n in names))


def main() -> None:
    spec = ClusterSpec(k=10, s_init=0.02)

    # Scalability with N (fixed 30x30 network).
    network = grid_city(30, 30, removal=0.15, seed=2)
    rows_n = []
    for n_points in (1000, 2000, 4000, 8000):
        points = generate_clustered_points(network, n_points, spec, seed=4)
        rows_n.append((f"N = {n_points}", run_all(network, points, spec)))
    print_table("Scalability with the number of objects N (paper Fig. 13)", rows_n)

    # Scalability with |V| (fixed 3000 points).
    rows_v = []
    for side in (15, 22, 30, 42):
        network = grid_city(side, side, removal=0.15, seed=2)
        points = generate_clustered_points(network, 3000, spec, seed=4)
        rows_v.append((f"|V| = {side * side}", run_all(network, points, spec)))
    print_table("Scalability with the network size |V| (paper Fig. 14)", rows_v)

    print(
        "\nShapes to observe: density-based costs track N and barely react "
        "to |V|;\nk-medoids and Single-Link track |V| (whole-graph "
        "traversals) and barely react to N."
    )


if __name__ == "__main__":
    main()
