#!/usr/bin/env python3
"""Restaurant hot-spots: why network distance beats Euclidean distance.

The paper's motivating scenario: "assume that we want to apply clustering on
the set of restaurants that appear in a city map, considering the distance
with respect to the city road network.  The resulting clusters may identify
areas which can be of interest to touristic location-based service providers
or restaurant chains."

This example builds a river city: two dense street grids separated by a
river crossed by a single bridge.  Restaurants cluster on both waterfronts.
Euclidean clustering happily merges the two waterfronts (they are 120 m
apart as the crow flies); network-aware ε-Link keeps them separate, because
driving between them means a long detour over the bridge.

Run:  python examples/restaurant_hotspots.py
"""

from __future__ import annotations

from repro import EpsLink, SpatialNetwork, PointSet
from repro.baselines import euclidean_distance_matrix, threshold_components


def build_river_city() -> SpatialNetwork:
    """Two 8x8 street grids, 1.2 blocks apart, joined by one bridge."""
    net = SpatialNetwork(name="river-city")
    side = 8

    def west(i: int, j: int) -> int:
        return i * side + j

    def east(i: int, j: int) -> int:
        return 1000 + i * side + j

    for i in range(side):
        for j in range(side):
            net.add_node(west(i, j), x=float(i), y=float(j))
            net.add_node(east(i, j), x=float(i + side + 0.2), y=float(j))
    for bank in (west, east):
        for i in range(side):
            for j in range(side):
                if i + 1 < side:
                    net.add_edge(bank(i, j), bank(i + 1, j))
                if j + 1 < side:
                    net.add_edge(bank(i, j), bank(i, j + 1))
    # One bridge at the city's north end.
    net.add_edge(west(side - 1, side - 1), east(0, side - 1))
    return net


def place_restaurants(net: SpatialNetwork) -> PointSet:
    """Two waterfront restaurant rows: column 7 of the west grid faces
    column 0 of the east grid across the river, at the SOUTH end — maximally
    far from the bridge."""
    pts = PointSet(net)
    side = 8
    for j in range(4):  # south half of each waterfront
        # West waterfront: on the vertical street at i=7.
        pts.add(7 * side + j, 7 * side + j + 1, 0.5, label=0)
        # East waterfront: on the vertical street at i=0 of the east grid.
        pts.add(1000 + j, 1000 + j + 1, 0.5, label=1)
    return pts


def main() -> None:
    net = build_river_city()
    restaurants = place_restaurants(net)
    print(f"City: {net.num_nodes} intersections, {net.num_edges} street segments")
    print(f"Restaurants: {len(restaurants)} (two waterfront rows, "
          f"1.2 blocks apart across the river)\n")

    eps = 2.0  # blocks

    network_result = EpsLink(net, restaurants, eps=eps).run()
    print(f"Network-distance eps-Link (eps={eps}): "
          f"{network_result.num_clusters} clusters")
    for label, members in sorted(network_result.clusters().items()):
        sides = {"west" if restaurants.get(m).label == 0 else "east" for m in members}
        print(f"  cluster {label}: {len(members)} restaurants ({'/'.join(sorted(sides))})")

    euclid = euclidean_distance_matrix(net, restaurants)
    euclid_result = threshold_components(euclid, eps=eps)
    print(f"\nEuclidean clustering (same eps): "
          f"{euclid_result.num_clusters} cluster(s)")
    for label, members in sorted(euclid_result.clusters().items()):
        sides = {"west" if restaurants.get(m).label == 0 else "east" for m in members}
        print(f"  cluster {label}: {len(members)} restaurants ({'/'.join(sorted(sides))})")

    print(
        "\nThe Euclidean view merges the waterfronts (the river is invisible "
        "to it);\nthe network view keeps them apart - driving between them "
        "takes the bridge,\na detour far longer than eps."
    )
    assert network_result.num_clusters == 2
    assert euclid_result.num_clusters == 1


if __name__ == "__main__":
    main()
