#!/usr/bin/env python3
"""Facility catchments with network Voronoi — and where to open next.

The paper's motivation: clusters of restaurants "can be of interest to ...
restaurant chains which want to open a new branch in the city".  This
example runs that workflow end to end:

1. cluster the customer objects with ε-Link to find the demand hot-spots;
2. partition all customers by their nearest *existing branch* with one
   network-Voronoi expansion (`repro.network.network_voronoi`);
3. rank the hot-spots by total customer distance to their nearest branch —
   the most under-served cluster is the candidate site for the new branch;
4. verify: adding a branch at that cluster's medoid slashes its members'
   distances.

Run:  python examples/facility_catchments.py
"""

from __future__ import annotations

from repro import EpsLink
from repro.datagen import ClusterSpec, generate_clustered_points, grid_city, suggest_eps
from repro.datagen.clusters import well_separated_seed_edges
from repro.network.voronoi import network_voronoi


def main() -> None:
    # A city and its customers (5 demand hot-spots + background noise).
    network = grid_city(25, 25, removal=0.12, seed=41)
    spec = ClusterSpec(k=5, s_init=0.02, outlier_fraction=0.05)
    seeds = well_separated_seed_edges(network, 5, seed=42)
    customers = generate_clustered_points(
        network, 1000, spec, seed=43, seed_edges=seeds
    )

    # Three existing branches: customer objects picked as branch locations
    # (any objects can serve as Voronoi sites).
    branch_ids = [0, 400, 800]
    print(f"City: {network.num_nodes} intersections; "
          f"{len(customers)} customers; {len(branch_ids)} existing branches\n")

    # 1. Demand hot-spots.
    hotspots = EpsLink(network, customers, eps=suggest_eps(spec), min_sup=10).run()
    print(f"eps-Link finds {hotspots.num_clusters} demand hot-spots "
          f"(+{len(hotspots.outliers())} scattered customers)")

    # 2. Catchments of the existing branches.
    assignment, distance = network_voronoi(network, customers, branch_ids)
    catchment_sizes = {b: 0 for b in branch_ids}
    for pid, branch in assignment.items():
        catchment_sizes[branch] += 1
    for branch, size in sorted(catchment_sizes.items()):
        print(f"  branch@{branch}: catchment of {size} customers")

    # 3. The most under-served hot-spot: largest summed distance-to-branch.
    burden: dict[int, float] = {}
    for label, members in hotspots.clusters().items():
        burden[label] = sum(distance.get(pid, 0.0) for pid in members)
    worst = max(burden, key=burden.get)
    members = hotspots.members(worst)
    print(f"\nmost under-served hot-spot: cluster {worst} "
          f"({len(members)} customers, total distance {burden[worst]:.1f})")

    # 4. Open a branch at that cluster's 1-medoid and re-measure.
    from repro.core.kmedoids import NetworkKMedoids
    from repro.network.points import PointSet

    sub = PointSet.from_points(network, [customers.get(pid) for pid in members])
    medoid_run = NetworkKMedoids(network, sub, k=1, seed=0).run()
    new_branch = medoid_run.stats["medoids"][0]
    _, distance_after = network_voronoi(
        network, customers, branch_ids + [new_branch]
    )
    before = sum(distance.get(pid, 0.0) for pid in members)
    after = sum(distance_after.get(pid, 0.0) for pid in members)
    print(f"opening a branch at the cluster medoid (object {new_branch}): "
          f"members' total distance {before:.1f} -> {after:.1f} "
          f"({1 - after / before:.0%} less)")
    assert after < before * 0.5


if __name__ == "__main__":
    main()
