#!/usr/bin/env python3
"""Clustering straight off the disk-based storage architecture (Section 4.1).

Builds the paper's storage representation — adjacency flat file + point
groups, both B+-tree indexed, behind a 4 KB-page / 1 MB LRU buffer — then
runs ε-Link *directly against the disk store*, reporting the page I/O the
traversal triggered.  Also contrasts the CCAM connectivity-clustered page
layout with a random layout, the locality idea CCAM exists for.

Run:  python examples/disk_backed_clustering.py
"""

from __future__ import annotations

import os
import tempfile

from repro import EpsLink
from repro.datagen import ClusterSpec, generate_clustered_points, grid_city, suggest_eps
from repro.storage import NetworkStore, random_order


def main() -> None:
    network = grid_city(40, 40, removal=0.15, seed=3)
    spec = ClusterSpec(k=6, s_init=0.02)
    points = generate_clustered_points(network, 3000, spec, seed=5)
    eps = suggest_eps(spec)
    print(f"Network: {network.num_nodes} nodes / {network.num_edges} edges, "
          f"{len(points)} objects")

    with tempfile.TemporaryDirectory() as tmp:
        results = {}
        for layout, order in [("ccam", "ccam"), ("random", random_order(network, 1))]:
            path = os.path.join(tmp, f"net-{layout}.db")
            store = NetworkStore.build(
                path, network, points,
                buffer_bytes=16 * 4096,  # tiny buffer: make locality visible
                node_order=order,
            )
            store.drop_caches()
            store.reset_stats()
            result = EpsLink(store, store.points(), eps=eps, min_sup=2).run()
            stats = store.stats()
            results[layout] = (result, stats)
            size_kb = os.path.getsize(path) // 1024
            store.close()
            print(f"\n--- {layout} page layout ({size_kb} KB on disk) ---")
            print(f"clusters: {result.num_clusters}, "
                  f"outliers: {len(result.outliers())}")
            print(f"page misses: {stats['buffer_misses']}, "
                  f"buffer hits: {stats['buffer_hits']}, "
                  f"hit rate: "
                  f"{stats['buffer_hits'] / (stats['buffer_hits'] + stats['buffer_misses']):.1%}")

        ccam_result, ccam_stats = results["ccam"]
        rand_result, rand_stats = results["random"]
        assert ccam_result.same_clustering(rand_result), (
            "page layout must never change the clustering, only its cost"
        )
        ratio = rand_stats["buffer_misses"] / max(1, ccam_stats["buffer_misses"])
        print(f"\nSame clusters from both layouts; the random layout paid "
              f"{ratio:.2f}x the page misses.")


if __name__ == "__main__":
    main()
