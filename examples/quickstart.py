#!/usr/bin/env python3
"""Quickstart: cluster objects on a spatial network with all four paradigms.

Builds a synthetic city road network, plants clusters of objects on its
edges with the paper's generator, and runs the four algorithms of the paper
(k-medoids, DBSCAN, ε-Link, Single-Link), reporting cluster counts, quality
against the planted ground truth, and runtime.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import EpsLink, NetworkDBSCAN, NetworkKMedoids, SingleLink
from repro.datagen import ClusterSpec, generate_clustered_points, grid_city, suggest_eps
from repro.eval import adjusted_rand_index, normalized_mutual_information


def main() -> None:
    # 1. A road network: a 30x30 perturbed grid city (900 intersections).
    network = grid_city(30, 30, removal=0.15, seed=7)
    print(f"Network: {network.num_nodes} nodes, {network.num_edges} edges")

    # 2. Objects on the edges: 8 planted clusters + 1% outliers.
    spec = ClusterSpec(k=8, s_init=0.02, magnification=5.0, outlier_fraction=0.01)
    points = generate_clustered_points(network, 2000, spec, seed=11)
    truth = {p.point_id: p.label for p in points}
    print(f"Objects: {len(points)} on {points.num_populated_edges()} edges "
          f"({spec.k} planted clusters)")

    # 3. The cluster-recovering eps, straight from the paper: 1.5 * s_init * F.
    eps = suggest_eps(spec)
    print(f"eps = {eps:.4f}\n")

    algorithms = [
        ("k-medoids", NetworkKMedoids(network, points, k=spec.k, seed=1)),
        ("DBSCAN", NetworkDBSCAN(network, points, eps=eps, min_pts=2)),
        ("eps-Link", EpsLink(network, points, eps=eps, min_sup=2)),
        ("Single-Link", SingleLink(network, points, stop_distance=eps,
                                   delta=0.7 * eps)),
    ]
    print(f"{'algorithm':<12} {'clusters':>8} {'outliers':>8} "
          f"{'ARI':>6} {'NMI':>6} {'time':>8}")
    for name, algo in algorithms:
        start = time.perf_counter()
        result = algo.run()
        elapsed = time.perf_counter() - start
        predicted = dict(result.assignment)
        ari = adjusted_rand_index(truth, predicted, noise="drop")
        nmi = normalized_mutual_information(truth, predicted, noise="drop")
        print(f"{name:<12} {result.num_clusters:>8} {len(result.outliers()):>8} "
              f"{ari:>6.3f} {nmi:>6.3f} {elapsed:>7.2f}s")

    # 4. The hierarchical view: the dendrogram's interesting levels.
    dendrogram = SingleLink(network, points, delta=0.7 * eps).build_dendrogram()
    levels = dendrogram.interesting_levels(window=10, factor=3.0)
    print(f"\nSingle-Link dendrogram: {dendrogram.num_leaves} leaves, "
          f"{len(dendrogram.merges)} merges")
    if levels:
        idx = levels[0]
        before = dendrogram.clusters_before_merge(idx)
        print(f"First interesting level: before merge #{idx} "
              f"(distance jump to {dendrogram.merges[idx].distance:.3f}) "
              f"-> {before.num_clusters} clusters")


if __name__ == "__main__":
    main()
